//! The snapshot wire format: versioned, checksummed, length-prefixed
//! binary sections.
//!
//! A snapshot is the durable image of one engine run's mutable state,
//! written at a checkpoint and read back on crash recovery. The format is
//! hand-rolled (the workspace builds offline; there is no serde backend)
//! and deliberately simple:
//!
//! ```text
//! magic   "AMRISNAP"                     8 bytes
//! version u32 LE                         format revision
//! fprint  u64 LE                         configuration fingerprint
//! step    u64 LE                         pipeline step the image captures
//! count   u32 LE                         number of sections
//! section × count:
//!     name_len u32 LE, name utf-8
//!     body_len u64 LE
//!     checksum u64 LE                    fxhash of the body bytes
//!     body
//! file checksum u64 LE                   fxhash of everything above
//! ```
//!
//! Every multi-byte integer is little-endian. Each section body carries
//! its own fxhash checksum, so a torn or bit-flipped write is detected at
//! parse time ([`SnapshotError::Checksum`]) and recovery can fall back to
//! an older snapshot. The configuration fingerprint ties a snapshot to
//! the engine configuration that produced it: restoring into a different
//! configuration is refused ([`SnapshotError::ConfigMismatch`]) instead
//! of silently diverging.
//!
//! [`SectionWriter`]/[`SectionReader`] are the primitive codecs: scalar
//! puts/gets plus the substrate types every layer serializes
//! ([`AttrVec`], [`VirtualTime`]). Higher layers (index arenas, assessment
//! collectors, the run context) compose them; this module knows nothing
//! about what the sections mean.

use crate::fxhash::FxHasher;
use crate::time::{VirtualDuration, VirtualTime};
use crate::value::AttrVec;
use std::fmt;
use std::hash::Hasher;

/// Leading magic bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"AMRISNAP";

/// Current format revision. Bump on any layout change; readers refuse
/// other revisions with [`SnapshotError::Version`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be written, parsed, or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem I/O failed (message carries the `std::io::Error` text;
    /// a `String` keeps this type `Clone + PartialEq`).
    Io(String),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file ended before the advertised layout was complete.
    Truncated,
    /// The file's format revision is not [`SNAPSHOT_VERSION`].
    Version {
        /// Revision found in the file.
        found: u32,
        /// Revision this build reads.
        expected: u32,
    },
    /// A section's stored checksum does not match its body bytes.
    Checksum {
        /// The failing section (empty for the file-level checksum).
        section: String,
    },
    /// The snapshot was produced by a different engine configuration.
    ConfigMismatch {
        /// Fingerprint found in the file.
        found: u64,
        /// Fingerprint of the configuration being restored into.
        expected: u64,
    },
    /// A section the restore path requires is absent.
    MissingSection(String),
    /// A section parsed but its contents are not restorable.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot I/O failed: {msg}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::Version { found, expected } => {
                write!(f, "snapshot format v{found}, this build reads v{expected}")
            }
            SnapshotError::Checksum { section } if section.is_empty() => {
                write!(f, "snapshot file checksum mismatch")
            }
            SnapshotError::Checksum { section } => {
                write!(f, "snapshot section `{section}` checksum mismatch")
            }
            SnapshotError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot was taken under configuration {found:#018x}, \
                 expected {expected:#018x}"
            ),
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot is missing section `{name}`")
            }
            SnapshotError::Malformed(what) => write!(f, "snapshot is malformed: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Append-only encoder for one section body.
///
/// All integers are little-endian; `f64` travels as its IEEE-754 bit
/// pattern, so round-trips are bit-exact (NaN payloads included).
#[derive(Debug, Default, Clone)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// A fresh, empty section body.
    pub fn new() -> Self {
        SectionWriter::default()
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` (as `u64`; the format is width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a boolean (one byte).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append a [`VirtualTime`].
    pub fn put_time(&mut self, t: VirtualTime) {
        self.put_u64(t.0);
    }

    /// Append a [`VirtualDuration`].
    pub fn put_duration(&mut self, d: VirtualDuration) {
        self.put_u64(d.0);
    }

    /// Append an [`AttrVec`] (length byte + values).
    pub fn put_attrs(&mut self, a: &AttrVec) {
        let vals = a.as_slice();
        self.put_u8(vals.len() as u8);
        for &v in vals {
            self.put_u64(v);
        }
    }

    /// The encoded body.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential decoder over one section body.
#[derive(Debug, Clone)]
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// Decode from raw body bytes (checksum already verified by
    /// [`SnapshotReader::parse`]).
    pub fn new(buf: &'a [u8]) -> Self {
        SectionReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` (stored as `u64`).
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Malformed(format!("length {v} overflows")))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a boolean.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        Ok(self.get_u8()? != 0)
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.get_usize()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("non-UTF-8 string".into()))
    }

    /// Read a [`VirtualTime`].
    pub fn get_time(&mut self) -> Result<VirtualTime, SnapshotError> {
        Ok(VirtualTime(self.get_u64()?))
    }

    /// Read a [`VirtualDuration`].
    pub fn get_duration(&mut self) -> Result<VirtualDuration, SnapshotError> {
        Ok(VirtualDuration(self.get_u64()?))
    }

    /// Read an [`AttrVec`].
    pub fn get_attrs(&mut self) -> Result<AttrVec, SnapshotError> {
        let len = self.get_u8()? as usize;
        let mut vals = [0u64; crate::value::MAX_ATTRS];
        if len > vals.len() {
            return Err(SnapshotError::Malformed(format!(
                "attr vector of width {len}"
            )));
        }
        for v in vals.iter_mut().take(len) {
            *v = self.get_u64()?;
        }
        AttrVec::from_slice(&vals[..len])
            .map_err(|_| SnapshotError::Malformed("attr vector rebuild failed".into()))
    }
}

/// Leading magic bytes of every spill-tier block (see [`seal_block`]).
pub const BLOCK_MAGIC: [u8; 4] = *b"AMRB";

/// Frame one storage-tier block: magic + body length + fxhash checksum +
/// body. Blocks reuse the snapshot section codec ([`SectionWriter`]) as
/// their wire format but live outside snapshot files, appended to a
/// block-store file; the explicit length keeps the framing self-contained
/// so a reader never trusts out-of-band metadata about how many bytes to
/// verify.
pub fn seal_block(body: SectionWriter) -> Vec<u8> {
    let body = body.into_bytes();
    let mut out = Vec::with_capacity(body.len() + 20);
    out.extend_from_slice(&BLOCK_MAGIC);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Verify and open a block written by [`seal_block`], returning a decoder
/// over its body.
///
/// # Errors
/// * [`SnapshotError::BadMagic`] when the frame does not start with
///   [`BLOCK_MAGIC`].
/// * [`SnapshotError::Truncated`] when the frame is shorter than its
///   advertised body.
/// * [`SnapshotError::Checksum`] when the body bytes do not match the
///   stored checksum — a torn or bit-flipped block write.
pub fn open_block(frame: &[u8]) -> Result<SectionReader<'_>, SnapshotError> {
    if frame.len() < BLOCK_MAGIC.len() + 16 {
        return Err(SnapshotError::Truncated);
    }
    if frame[..BLOCK_MAGIC.len()] != BLOCK_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = SectionReader::new(&frame[BLOCK_MAGIC.len()..]);
    let body_len = r.get_u64()? as usize;
    let stored = r.get_u64()?;
    let body = r.take(body_len)?;
    if checksum(body) != stored {
        return Err(SnapshotError::Checksum {
            section: "block".into(),
        });
    }
    Ok(SectionReader::new(body))
}

/// Assembles a complete snapshot: header + named, checksummed sections.
#[derive(Debug)]
pub struct SnapshotWriter {
    fingerprint: u64,
    step: u64,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Start a snapshot for the configuration identified by
    /// `fingerprint`, capturing the state at pipeline step `step`.
    pub fn new(fingerprint: u64, step: u64) -> Self {
        SnapshotWriter {
            fingerprint,
            step,
            sections: Vec::new(),
        }
    }

    /// Append one named section. Names must be unique; the reader indexes
    /// by name.
    pub fn add(&mut self, name: &str, body: SectionWriter) {
        debug_assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate snapshot section `{name}`"
        );
        self.sections.push((name.to_string(), body.into_bytes()));
    }

    /// Encode the complete snapshot file image.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self
                .sections
                .iter()
                .map(|(n, b)| n.len() + b.len() + 24)
                .sum::<usize>(),
        );
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, body) in &self.sections {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum(body).to_le_bytes());
            out.extend_from_slice(body);
        }
        let file_sum = checksum(&out);
        out.extend_from_slice(&file_sum.to_le_bytes());
        out
    }
}

/// Parsed snapshot: verified header plus sections retrievable by name.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    fingerprint: u64,
    step: u64,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotReader {
    /// Parse and fully verify a snapshot file image: magic, version, the
    /// file-level checksum, and every section checksum. Corruption
    /// anywhere yields an error — the caller falls back to an older
    /// snapshot.
    pub fn parse(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let (head, tail_sum) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail_sum.try_into().unwrap());
        if checksum(head) != stored {
            return Err(SnapshotError::Checksum {
                section: String::new(),
            });
        }
        let mut r = SectionReader::new(&head[SNAPSHOT_MAGIC.len()..]);
        let version = r.get_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let fingerprint = r.get_u64()?;
        let step = r.get_u64()?;
        let count = r.get_u32()? as usize;
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = r.get_u32()? as usize;
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|_| SnapshotError::Malformed("non-UTF-8 section name".into()))?;
            let body_len = r.get_u64()? as usize;
            let sum = r.get_u64()?;
            let body = r.take(body_len)?;
            if checksum(body) != sum {
                return Err(SnapshotError::Checksum { section: name });
            }
            sections.push((name, body.to_vec()));
        }
        Ok(SnapshotReader {
            fingerprint,
            step,
            sections,
        })
    }

    /// The configuration fingerprint recorded at write time.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The pipeline step the image captures.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Names of all sections, in write order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// A decoder over the named section's body.
    pub fn section(&self, name: &str) -> Result<SectionReader<'_>, SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, body)| SectionReader::new(body))
            .ok_or_else(|| SnapshotError::MissingSection(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new(0xDEAD_BEEF, 42);
        let mut a = SectionWriter::new();
        a.put_u64(7);
        a.put_str("hello");
        a.put_f64(-0.0);
        w.add("alpha", a);
        let mut b = SectionWriter::new();
        b.put_attrs(&AttrVec::from_slice(&[1, 2, 3]).unwrap());
        b.put_time(VirtualTime(99));
        w.add("beta", b);
        w.finish()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample();
        let snap = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(snap.fingerprint(), 0xDEAD_BEEF);
        assert_eq!(snap.step(), 42);
        let mut a = snap.section("alpha").unwrap();
        assert_eq!(a.get_u64().unwrap(), 7);
        assert_eq!(a.get_str().unwrap(), "hello");
        assert_eq!(a.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(a.remaining(), 0);
        let mut b = snap.section("beta").unwrap();
        assert_eq!(b.get_attrs().unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(b.get_time().unwrap(), VirtualTime(99));
    }

    #[test]
    fn missing_section_is_typed() {
        let bytes = sample();
        let snap = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(
            snap.section("gamma").unwrap_err(),
            SnapshotError::MissingSection("gamma".into())
        );
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut bytes = sample();
        // Flip one bit somewhere inside section bodies.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match SnapshotReader::parse(&bytes) {
            Err(SnapshotError::Checksum { .. }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample();
        for cut in [3, bytes.len() / 2, bytes.len() - 1] {
            let err = SnapshotReader::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::Checksum { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn block_frame_round_trips_and_detects_corruption() {
        let mut w = SectionWriter::new();
        w.put_u32(7);
        w.put_str("payload");
        let frame = seal_block(w);
        let mut r = open_block(&frame).unwrap();
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_str().unwrap(), "payload");
        assert_eq!(r.remaining(), 0);

        // A flipped body byte fails the checksum.
        let mut torn = frame.clone();
        let n = torn.len();
        torn[n - 3] ^= 0x10;
        assert!(matches!(
            open_block(&torn),
            Err(SnapshotError::Checksum { .. })
        ));
        // A truncated frame is typed, not a panic.
        assert!(matches!(
            open_block(&frame[..frame.len() - 2]),
            Err(SnapshotError::Truncated | SnapshotError::Checksum { .. })
        ));
        // Garbage is rejected on magic.
        assert!(matches!(
            open_block(b"NOTABLOCK_AT_ALL_____"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn window_buffer_iter_and_retain() {
        use crate::window::{WindowBuffer, WindowSpec};
        let mut b = WindowBuffer::new(WindowSpec::secs(10));
        for s in 0..4u64 {
            b.push(VirtualTime::from_secs(s), s as u32);
        }
        let seen: Vec<u32> = b.iter().map(|&(_, x)| x).collect();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        b.retain(|&x| x % 2 == 0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.oldest_ts(), Some(VirtualTime::from_secs(0)));
        let left: Vec<u32> = b.iter().map(|&(_, x)| x).collect();
        assert_eq!(left, vec![0, 2]);
    }

    #[test]
    fn wrong_magic_and_version() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(
            SnapshotReader::parse(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );

        // Corrupting the version also breaks the file checksum; rebuild a
        // valid file with a bumped version via the writer internals
        // instead: patch bytes then re-seal the tail checksum.
        let mut bytes = sample();
        bytes[8] = SNAPSHOT_VERSION as u8 + 1;
        let n = bytes.len();
        let sum = super::checksum(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SnapshotReader::parse(&bytes).unwrap_err(),
            SnapshotError::Version {
                found: SNAPSHOT_VERSION + 1,
                expected: SNAPSHOT_VERSION
            }
        );
    }
}
