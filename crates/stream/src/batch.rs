//! Batched job flow — the backlog representation of the runtime layer.
//!
//! The engine's backlog used to be a `VecDeque` of individual routing jobs;
//! batch-granular operator pipelines (the precondition for multicore stream
//! joins — Shahvarani & Jacobsen's index-based multicore join, Hu & Qiu's
//! runtime-optimized multi-way join) need work to move between operators in
//! *batches*. [`JobQueue`] keeps the backlog as a FIFO of [`Batch`]es while
//! preserving single-job order **exactly**: `push` → `pop` round-trips in
//! precisely `VecDeque` order, so the deterministic simulation harness can
//! drain job-by-job while a future parallel runtime hands whole batches to
//! worker operators.
//!
//! Steady state allocates nothing: drained batch buffers are recycled into
//! a spare pool and reused for new tail batches.

use std::collections::VecDeque;

/// Default jobs per batch. 64 keeps a batch within a few cache lines of
/// job headers while giving a parallel consumer enough work per handoff.
pub const DEFAULT_BATCH_CAPACITY: usize = 64;

/// Default bound on a [`JobQueue`]'s spare-buffer pool (see
/// [`JobQueue::with_caps`]). A host co-locating many queues can pass a
/// smaller cap to bound aggregate spare-buffer memory.
pub const DEFAULT_MAX_SPARE_BUFFERS: usize = 8;

/// One batch of jobs, in arrival order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch<T> {
    items: Vec<T>,
}

impl<T> Batch<T> {
    /// An empty batch.
    pub fn new() -> Self {
        Batch { items: Vec::new() }
    }

    /// An empty batch with pre-sized storage.
    pub fn with_capacity(cap: usize) -> Self {
        Batch {
            items: Vec::with_capacity(cap),
        }
    }

    /// Wrap an existing buffer (used by [`JobQueue`] to recycle storage).
    fn from_vec(items: Vec<T>) -> Self {
        Batch { items }
    }

    /// Append a job to the batch.
    #[inline]
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// Remove and return the newest (last-pushed) job, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop()
    }

    /// Jobs in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the batch holds no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The jobs, oldest first.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Iterate the jobs, oldest first.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Consume the batch, yielding its jobs oldest-first.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Split the batch into `parts` contiguous runs of near-equal length
    /// (sizes differ by at most one, order preserved) — the fan-out shape
    /// a parallel consumer hands to `parts` shard workers. Trailing runs
    /// are empty when the batch holds fewer jobs than `parts`, so every
    /// worker index stays addressable.
    ///
    /// # Panics
    /// Panics when `parts` is zero.
    pub fn split(&self, parts: usize) -> impl Iterator<Item = &[T]> + '_ {
        assert!(parts > 0, "parts must be positive");
        let len = self.items.len();
        let base = len / parts;
        let extra = len % parts;
        let mut start = 0usize;
        (0..parts).map(move |i| {
            let take = base + usize::from(i < extra);
            let run = &self.items[start..start + take];
            start += take;
            run
        })
    }
}

impl<T> From<Vec<T>> for Batch<T> {
    fn from(items: Vec<T>) -> Self {
        Batch { items }
    }
}

impl<T> IntoIterator for Batch<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Batch<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// A FIFO backlog of jobs stored batch-granularly.
///
/// Pushes fill an open tail batch; once it reaches the batch capacity it is
/// sealed and a fresh (recycled) buffer opens. Pops drain the oldest sealed
/// batch job-by-job before touching younger ones, so the queue is
/// indistinguishable from `VecDeque<T>` at the job level — the property the
/// byte-identical §V equivalence suite pins — while `pop_batch` lets a
/// batch-first consumer take whole batches.
#[derive(Debug, Clone)]
pub struct JobQueue<T> {
    /// Head batch being drained, **reversed** so `Vec::pop` yields FIFO
    /// order in O(1) without requiring `T: Clone`.
    active: Vec<T>,
    /// Sealed batches waiting behind the active one, oldest first.
    sealed: VecDeque<Batch<T>>,
    /// Open tail batch that `push` appends to.
    tail: Batch<T>,
    /// Total queued jobs across active + sealed + tail.
    len: usize,
    batch_capacity: usize,
    /// Drained buffers kept for reuse (steady state never allocates).
    spare: Vec<Vec<T>>,
    /// Most spare buffers retained (see [`Self::with_caps`]).
    spare_cap: usize,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> JobQueue<T> {
    /// An empty queue with the [`DEFAULT_BATCH_CAPACITY`].
    pub fn new() -> Self {
        Self::with_batch_capacity(DEFAULT_BATCH_CAPACITY)
    }

    /// An empty queue sealing batches at `batch_capacity` jobs, retaining
    /// at most [`DEFAULT_MAX_SPARE_BUFFERS`] spare buffers.
    ///
    /// # Panics
    /// Panics on a zero capacity.
    pub fn with_batch_capacity(batch_capacity: usize) -> Self {
        Self::with_caps(batch_capacity, DEFAULT_MAX_SPARE_BUFFERS)
    }

    /// An empty queue with explicit batch capacity *and* spare-pool bound.
    ///
    /// A deep backlog seals many batches whose buffers all come home when
    /// the queue drains; without a bound the pool would keep the burst's
    /// peak allocation for the rest of the run. `spare_cap = 0` disables
    /// recycling entirely — every sealed batch allocates fresh — which a
    /// multi-tenant host can use to cap aggregate spare-buffer memory
    /// across many co-resident queues.
    ///
    /// # Panics
    /// Panics on a zero batch capacity (a zero `spare_cap` is valid).
    pub fn with_caps(batch_capacity: usize, spare_cap: usize) -> Self {
        assert!(batch_capacity > 0, "batch capacity must be positive");
        JobQueue {
            active: Vec::new(),
            sealed: VecDeque::new(),
            tail: Batch::new(),
            len: 0,
            batch_capacity,
            spare: Vec::new(),
            spare_cap,
        }
    }

    /// Jobs per sealed batch.
    #[inline]
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Most spare buffers this queue retains for reuse.
    #[inline]
    pub fn spare_cap(&self) -> usize {
        self.spare_cap
    }

    /// Re-bound the spare pool, freeing buffers beyond the new cap
    /// immediately. Live jobs are untouched.
    pub fn set_spare_cap(&mut self, spare_cap: usize) {
        self.spare_cap = spare_cap;
        self.spare.truncate(spare_cap);
    }

    /// Total queued jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no jobs are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of batches currently materialized (active head counts as one
    /// while non-empty, plus sealed batches, plus a non-empty tail).
    pub fn n_batches(&self) -> usize {
        usize::from(!self.active.is_empty())
            + self.sealed.len()
            + usize::from(!self.tail.is_empty())
    }

    /// Take a recycled buffer (or allocate the first time around).
    fn fresh_buf(&mut self) -> Vec<T> {
        self.spare
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(self.batch_capacity))
    }

    /// Return a drained buffer to the spare pool, unless the pool is
    /// already at [`Self::spare_cap`] (then the buffer is freed).
    fn recycle(&mut self, buf: Vec<T>) {
        debug_assert!(buf.is_empty());
        if buf.capacity() > 0 && self.spare.len() < self.spare_cap {
            self.spare.push(buf);
        }
    }

    /// Enqueue one job at the back.
    pub fn push(&mut self, item: T) {
        if self.tail.len() == self.batch_capacity {
            let buf = self.fresh_buf();
            let full = std::mem::replace(&mut self.tail, Batch::from_vec(buf));
            self.sealed.push_back(full);
        }
        self.tail.push(item);
        self.len += 1;
    }

    /// Enqueue a whole batch behind everything queued so far (the open tail
    /// is sealed first so older jobs keep draining first).
    pub fn push_batch(&mut self, batch: Batch<T>) {
        if batch.is_empty() {
            return;
        }
        if !self.tail.is_empty() {
            let buf = self.fresh_buf();
            let part = std::mem::replace(&mut self.tail, Batch::from_vec(buf));
            self.sealed.push_back(part);
        }
        self.len += batch.len();
        self.sealed.push_back(batch);
    }

    /// Move the oldest unsealed-or-sealed batch into the (empty) active
    /// head, reversed for O(1) FIFO pops.
    fn promote(&mut self) -> bool {
        debug_assert!(self.active.is_empty());
        let next = match self.sealed.pop_front() {
            Some(b) => b,
            None if !self.tail.is_empty() => {
                let buf = self.fresh_buf();
                std::mem::replace(&mut self.tail, Batch::from_vec(buf))
            }
            None => return false,
        };
        let mut items = next.into_items();
        items.reverse();
        let old = std::mem::replace(&mut self.active, items);
        self.recycle(old);
        true
    }

    /// Dequeue the oldest job.
    pub fn pop(&mut self) -> Option<T> {
        if self.active.is_empty() && !self.promote() {
            return None;
        }
        let item = self.active.pop();
        debug_assert!(item.is_some());
        if item.is_some() {
            self.len -= 1;
            if self.active.is_empty() {
                // Recycle the drained buffer for a future tail batch.
                let buf = std::mem::take(&mut self.active);
                self.recycle(buf);
            }
        }
        item
    }

    /// Dequeue the **newest** job — the opposite end from [`pop`](Self::pop).
    ///
    /// This is the load-shedding primitive for drop-newest policies and the
    /// reorder fault: the job removed is the one that would otherwise drain
    /// last. All other jobs keep their exact FIFO order.
    pub fn pop_newest(&mut self) -> Option<T> {
        if let Some(item) = self.tail.pop() {
            self.len -= 1;
            return Some(item);
        }
        if let Some(back) = self.sealed.back_mut() {
            let item = back.pop();
            debug_assert!(item.is_some(), "sealed batches are never empty");
            if item.is_some() {
                self.len -= 1;
                if back.is_empty() {
                    // Drop the emptied batch so `promote` never sees it;
                    // recycle its buffer like any drained batch.
                    if let Some(empty) = self.sealed.pop_back() {
                        let buf = empty.into_items();
                        self.recycle(buf);
                    }
                }
                return item;
            }
        }
        if self.active.is_empty() {
            return None;
        }
        // `active` is reversed (oldest last), so the newest sits at index 0.
        self.len -= 1;
        Some(self.active.remove(0))
    }

    /// Dequeue the oldest whole batch (the partially drained head batch
    /// counts: its remaining jobs come out as one batch).
    pub fn pop_batch(&mut self) -> Option<Batch<T>> {
        if self.active.is_empty() && !self.promote() {
            return None;
        }
        let mut items = std::mem::take(&mut self.active);
        items.reverse(); // back to oldest-first
        self.len -= items.len();
        Some(Batch::from_vec(items))
    }

    /// Iterate all queued jobs, oldest first (diagnostics; not on the hot
    /// path).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.active
            .iter()
            .rev()
            .chain(self.sealed.iter().flat_map(|b| b.iter()))
            .chain(self.tail.iter())
    }

    /// Serialize the live backlog into a snapshot section: batch capacity,
    /// job count, then every queued job oldest-first via `put`.
    ///
    /// Only *live* jobs are captured. Spare-pool buffers are working
    /// storage, not state — a queue restored by [`load_jobs`]
    /// (Self::load_jobs) starts with an empty pool and re-warms it lazily
    /// as batches drain, exactly like a freshly built queue.
    pub fn save_jobs(
        &self,
        w: &mut crate::snapshot::SectionWriter,
        mut put: impl FnMut(&mut crate::snapshot::SectionWriter, &T),
    ) {
        w.put_usize(self.batch_capacity);
        w.put_usize(self.len);
        for job in self.iter() {
            put(w, job);
        }
    }

    /// Rebuild a queue from a section written by [`save_jobs`]
    /// (Self::save_jobs), reading each job with `get`.
    ///
    /// Jobs re-enter through [`push`](Self::push), so internal batch
    /// boundaries may differ from the saved queue's — irrelevant at the
    /// job level, where the queue is pinned indistinguishable from a
    /// `VecDeque` under any `pop`/`pop_newest` interleaving.
    ///
    /// # Errors
    /// Propagates decode failures from `get` and rejects a corrupt
    /// (zero) batch capacity.
    pub fn load_jobs(
        r: &mut crate::snapshot::SectionReader<'_>,
        mut get: impl FnMut(
            &mut crate::snapshot::SectionReader<'_>,
        ) -> Result<T, crate::snapshot::SnapshotError>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let batch_capacity = r.get_usize()?;
        if batch_capacity == 0 {
            return Err(crate::snapshot::SnapshotError::Malformed(
                "job queue batch capacity is zero".into(),
            ));
        }
        let n = r.get_usize()?;
        let mut q = JobQueue::with_batch_capacity(batch_capacity);
        for _ in 0..n {
            q.push(get(r)?);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn batch_basics() {
        let mut b = Batch::with_capacity(4);
        assert!(b.is_empty());
        b.push(1);
        b.push(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.as_slice(), &[1, 2]);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(b.clone().into_items(), vec![1, 2]);
        assert_eq!((&b).into_iter().count(), 2);
        assert_eq!(b.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(Batch::from(vec![7]).as_slice(), &[7]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = JobQueue::<u32>::with_batch_capacity(0);
    }

    #[test]
    fn fifo_across_batch_boundaries() {
        let mut q = JobQueue::with_batch_capacity(3);
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        assert!(q.n_batches() >= 4, "10 jobs at cap 3: {}", q.n_batches());
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_matches_vecdeque() {
        // Deterministic pseudo-random interleaving (LCG) compared against
        // the reference VecDeque the executor used before batching.
        let mut q = JobQueue::with_batch_capacity(4);
        let mut reference: VecDeque<u64> = VecDeque::new();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = 0u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state >> 63 == 0 || reference.is_empty() {
                q.push(next);
                reference.push_back(next);
                next += 1;
            } else {
                assert_eq!(q.pop(), reference.pop_front());
            }
            assert_eq!(q.len(), reference.len());
            assert_eq!(q.is_empty(), reference.is_empty());
        }
        while let Some(want) = reference.pop_front() {
            assert_eq!(q.pop(), Some(want));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn iter_reports_queue_order() {
        let mut q = JobQueue::with_batch_capacity(2);
        for i in 0..7 {
            q.push(i);
        }
        q.pop(); // partially drain the head batch
        assert_eq!(
            q.iter().copied().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn push_batch_seals_the_tail_first() {
        let mut q = JobQueue::with_batch_capacity(8);
        q.push(1);
        q.push(2);
        q.push_batch(Batch::from(vec![3, 4]));
        q.push(5);
        q.push_batch(Batch::new()); // no-op
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pop_batch_returns_oldest_first() {
        let mut q = JobQueue::with_batch_capacity(3);
        for i in 0..8 {
            q.push(i);
        }
        assert_eq!(q.pop(), Some(0));
        // Remaining head batch [1, 2] comes out as one batch.
        assert_eq!(q.pop_batch().unwrap().as_slice(), &[1, 2]);
        assert_eq!(q.pop_batch().unwrap().as_slice(), &[3, 4, 5]);
        assert_eq!(q.pop_batch().unwrap().as_slice(), &[6, 7]);
        assert!(q.pop_batch().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn pop_newest_takes_the_back_across_every_region() {
        // Exercise all three storage regions: tail, sealed back, active.
        let mut q = JobQueue::with_batch_capacity(3);
        for i in 0..8 {
            q.push(i); // [0 1 2][3 4 5] tail:[6 7]
        }
        assert_eq!(q.pop_newest(), Some(7), "tail first");
        assert_eq!(q.pop_newest(), Some(6));
        assert_eq!(q.pop_newest(), Some(5), "then the newest sealed batch");
        assert_eq!(q.pop(), Some(0), "head order is untouched");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        // Active now holds the promoted [3, 4]; newest is 4.
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop_newest(), Some(4), "active region, newest end");
        assert_eq!(q.pop_newest(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_newest_matches_vecdeque_back_under_interleaving() {
        let mut q = JobQueue::with_batch_capacity(4);
        let mut reference: VecDeque<u64> = VecDeque::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = 0u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match state >> 62 {
                0 | 1 => {
                    q.push(next);
                    reference.push_back(next);
                    next += 1;
                }
                2 => assert_eq!(q.pop(), reference.pop_front()),
                _ => assert_eq!(q.pop_newest(), reference.pop_back()),
            }
            assert_eq!(q.len(), reference.len());
        }
        while let Some(want) = reference.pop_front() {
            assert_eq!(q.pop(), Some(want));
        }
        assert_eq!(q.pop_newest(), None);
    }

    #[test]
    fn split_yields_contiguous_near_equal_runs() {
        let b = Batch::from((0..10).collect::<Vec<i32>>());
        let runs: Vec<&[i32]> = b.split(3).collect();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0], &[0, 1, 2, 3]);
        assert_eq!(runs[1], &[4, 5, 6]);
        assert_eq!(runs[2], &[7, 8, 9]);
        // Fewer jobs than parts: trailing runs are empty, order intact.
        let small = Batch::from(vec![1, 2]);
        let runs: Vec<&[i32]> = small.split(4).collect();
        assert_eq!(runs, vec![&[1][..], &[2][..], &[][..], &[][..]]);
        // Concatenation of the runs is always the original batch.
        for parts in 1..=12 {
            let joined: Vec<i32> = b.split(parts).flatten().copied().collect();
            assert_eq!(joined, b.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn split_rejects_zero_parts() {
        let _ = Batch::from(vec![1]).split(0).count();
    }

    #[test]
    fn spare_pool_never_exceeds_its_cap() {
        let cap = DEFAULT_MAX_SPARE_BUFFERS;
        let mut q = JobQueue::with_batch_capacity(4);
        assert_eq!(q.spare_cap(), cap);
        // A deep burst seals ~100 batches; draining them all would hand
        // ~100 buffers back to the pool without the bound.
        for burst in 0..3 {
            for i in 0..400u64 {
                q.push(burst * 1000 + i);
            }
            while q.pop().is_some() {
                assert!(
                    q.spare.len() <= cap,
                    "spare pool grew past its cap: {} > {cap}",
                    q.spare.len()
                );
            }
            assert!(q.is_empty());
        }
        // pop_newest drains recycle through the same bounded path.
        for i in 0..400u64 {
            q.push(i);
        }
        while q.pop_newest().is_some() {
            assert!(q.spare.len() <= cap);
        }
        assert!(q.spare.len() <= cap);
    }

    #[test]
    fn snapshot_excludes_spare_pool_and_restored_queue_rewarms_lazily() {
        use crate::snapshot::{SectionReader, SectionWriter};
        let cap = DEFAULT_MAX_SPARE_BUFFERS;
        let mut q = JobQueue::with_batch_capacity(4);
        // Warm the spare pool, then leave a partially drained backlog.
        for i in 0..64u64 {
            q.push(i);
        }
        while q.len() > 10 {
            q.pop();
        }
        assert!(!q.spare.is_empty(), "test needs a warmed spare pool");
        let live: Vec<u64> = q.iter().copied().collect();

        let mut w = SectionWriter::new();
        q.save_jobs(&mut w, |w, &job| w.put_u64(job));
        let bytes = w.into_bytes();
        // The image holds capacity + count + the live jobs, nothing more:
        // spare buffers must not inflate the snapshot.
        assert_eq!(bytes.len(), 16 + live.len() * 8);

        let mut r = SectionReader::new(&bytes);
        let mut restored: JobQueue<u64> = JobQueue::load_jobs(&mut r, |r| r.get_u64()).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(restored.batch_capacity(), 4);
        assert_eq!(restored.len(), live.len());
        assert!(
            restored.spare.is_empty(),
            "restored queue must start with an empty spare pool"
        );
        // Draining re-warms the pool lazily and the bound still holds.
        for i in 0..400u64 {
            restored.push(i);
        }
        let drained: Vec<u64> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(&drained[..live.len()], &live[..], "job order preserved");
        assert!(
            !restored.spare.is_empty(),
            "drained buffers re-warm the pool"
        );
        assert!(restored.spare.len() <= cap, "default spare cap respected");
    }

    #[test]
    fn zero_spare_queue_recycles_nothing() {
        let mut q = JobQueue::with_caps(4, 0);
        assert_eq!(q.spare_cap(), 0);
        // Fill/drain cycles that would warm a default pool keep it empty.
        for round in 0..5u64 {
            for i in 0..32 {
                q.push(round * 100 + i);
            }
            let drained: Vec<u64> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(drained.len(), 32, "FIFO contents unaffected by the cap");
            assert!(drained.windows(2).all(|w| w[0] < w[1]));
            assert!(
                q.spare.is_empty(),
                "a 0-spare queue must never retain buffers"
            );
        }
        // Tightening a warmed queue frees the excess immediately.
        let mut warm = JobQueue::with_batch_capacity(4);
        for i in 0..64u64 {
            warm.push(i);
        }
        while warm.pop().is_some() {}
        assert!(warm.spare.len() > 2, "test needs a warmed pool");
        warm.set_spare_cap(2);
        assert_eq!(warm.spare.len(), 2);
        warm.set_spare_cap(0);
        assert!(warm.spare.is_empty());
        // And it keeps working, just allocation-per-batch.
        for i in 0..64u64 {
            warm.push(i);
        }
        while warm.pop().is_some() {}
        assert!(warm.spare.is_empty());
    }

    #[test]
    fn buffers_are_recycled() {
        let mut q = JobQueue::with_batch_capacity(4);
        // Fill and drain a few times; after warm-up the spare pool feeds
        // every new tail/active buffer.
        for round in 0..5 {
            for i in 0..16 {
                q.push(round * 100 + i);
            }
            while q.pop().is_some() {}
        }
        assert!(q.is_empty());
        assert!(
            !q.spare.is_empty(),
            "drained buffers must return to the spare pool"
        );
        let spare_before = q.spare.len();
        for i in 0..16 {
            q.push(i);
        }
        assert!(
            q.spare.len() < spare_before,
            "new batches must reuse spare buffers"
        );
    }
}
