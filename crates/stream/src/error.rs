//! Error types shared by the stream substrate.

use std::fmt;

/// Errors raised while constructing or validating substrate objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An attribute vector exceeded [`crate::value::MAX_ATTRS`].
    TooManyAttributes {
        /// The number of attributes requested.
        requested: usize,
        /// The hard per-tuple cap.
        max: usize,
    },
    /// A stream id referenced by a query is not among the declared schemas.
    UnknownStream(u16),
    /// An attribute id is out of range for the referenced stream schema.
    UnknownAttribute {
        /// The stream the attribute was looked up in.
        stream: u16,
        /// The offending attribute index.
        attr: u8,
    },
    /// A query failed structural validation (empty FROM, self-join predicate,
    /// disconnected join graph, ...). The payload is a human-readable reason.
    InvalidQuery(String),
    /// A window specification is degenerate (zero length).
    InvalidWindow,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::TooManyAttributes { requested, max } => write!(
                f,
                "too many attributes: requested {requested}, maximum is {max}"
            ),
            StreamError::UnknownStream(id) => write!(f, "unknown stream id {id}"),
            StreamError::UnknownAttribute { stream, attr } => {
                write!(f, "unknown attribute {attr} on stream {stream}")
            }
            StreamError::InvalidQuery(reason) => write!(f, "invalid query: {reason}"),
            StreamError::InvalidWindow => write!(f, "invalid window: length must be positive"),
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StreamError::TooManyAttributes {
            requested: 12,
            max: 8,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains('8'));
        assert!(StreamError::UnknownStream(3).to_string().contains('3'));
        assert!(StreamError::InvalidWindow.to_string().contains("window"));
        let e = StreamError::UnknownAttribute { stream: 1, attr: 9 };
        assert!(e.to_string().contains('9'));
        let e = StreamError::InvalidQuery("empty FROM".into());
        assert!(e.to_string().contains("empty FROM"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StreamError::InvalidWindow, StreamError::InvalidWindow);
        assert_ne!(StreamError::UnknownStream(1), StreamError::UnknownStream(2));
    }
}
