//! SPJ query model (§II of the paper).
//!
//! A query joins `n` streams under sliding-window semantics. For each stream
//! a *state* is instantiated; the state's **join attribute set** (JAS) is the
//! set of its attributes named by at least one join predicate. Every search
//! request hitting the state uses some subset of the JAS — an access pattern.
//!
//! [`JoinGraph`] precomputes everything the engine needs per probe: given a
//! partial tuple covering streams `M` and a target state `s`, which JAS
//! positions of `s` are constrained (the probe's access pattern) and where in
//! the partial tuple each constraining value comes from.

use crate::error::StreamError;
use crate::pattern::AccessPattern;
use crate::schema::{AttrId, StreamId, StreamSchema};
use crate::tuple::{PartialTuple, StreamMask, MAX_STREAMS};
use crate::value::{AttrValue, AttrVec, MAX_ATTRS};
use crate::window::WindowSpec;
use serde::{Deserialize, Serialize};

/// Join comparison operator.
///
/// The bit-address index and the hash baselines accelerate equality joins;
/// non-equality predicates are evaluated as residual filters after the
/// equality lookup (or during a scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinOp {
    /// `=` — indexable.
    Eq,
    /// `<` — residual filter only.
    Lt,
    /// `>` — residual filter only.
    Gt,
    /// `≤` — residual filter only.
    Le,
    /// `≥` — residual filter only.
    Ge,
}

impl JoinOp {
    /// True iff the operator can be served by hashing (equality).
    #[inline]
    pub fn indexable(self) -> bool {
        matches!(self, JoinOp::Eq)
    }

    /// Evaluate the operator with `left` on the left-hand side.
    #[inline]
    pub fn eval(self, left: u64, right: u64) -> bool {
        match self {
            JoinOp::Eq => left == right,
            JoinOp::Lt => left < right,
            JoinOp::Gt => left > right,
            JoinOp::Le => left <= right,
            JoinOp::Ge => left >= right,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    #[inline]
    pub fn flipped(self) -> JoinOp {
        match self {
            JoinOp::Eq => JoinOp::Eq,
            JoinOp::Lt => JoinOp::Gt,
            JoinOp::Gt => JoinOp::Lt,
            JoinOp::Le => JoinOp::Ge,
            JoinOp::Ge => JoinOp::Le,
        }
    }
}

/// One join predicate `S1.a1 op S2.a2` from the WHERE clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinPredicate {
    /// Left stream/attribute reference.
    pub left: (StreamId, AttrId),
    /// Comparison operator.
    pub op: JoinOp,
    /// Right stream/attribute reference.
    pub right: (StreamId, AttrId),
}

impl JoinPredicate {
    /// Equality predicate `s1.a1 = s2.a2`.
    pub fn eq(s1: StreamId, a1: AttrId, s2: StreamId, a2: AttrId) -> Self {
        JoinPredicate {
            left: (s1, a1),
            op: JoinOp::Eq,
            right: (s2, a2),
        }
    }

    /// True iff the predicate touches stream `s`.
    #[inline]
    pub fn touches(&self, s: StreamId) -> bool {
        self.left.0 == s || self.right.0 == s
    }

    /// If the predicate touches `s`, return `(s's attribute, other stream,
    /// other attribute, op-as-seen-from-s)`.
    pub fn from_perspective(&self, s: StreamId) -> Option<(AttrId, StreamId, AttrId, JoinOp)> {
        if self.left.0 == s {
            Some((self.left.1, self.right.0, self.right.1, self.op))
        } else if self.right.0 == s {
            Some((self.right.1, self.left.0, self.left.1, self.op.flipped()))
        } else {
            None
        }
    }
}

/// A local selection predicate `S.a op constant` applied at ingest: tuples
/// failing their stream's selections never enter the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Selection {
    /// Stream the selection filters.
    pub stream: StreamId,
    /// Attribute compared.
    pub attr: AttrId,
    /// Comparison operator.
    pub op: JoinOp,
    /// Constant right-hand side.
    pub value: u64,
}

impl Selection {
    /// True iff `tuple_attrs` (schema-aligned) passes this selection.
    #[inline]
    pub fn accepts(&self, tuple_attrs: &[AttrValue]) -> bool {
        self.op.eval(tuple_attrs[self.attr.idx()], self.value)
    }
}

/// A select-project-join query over `n` windowed streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpjQuery {
    /// Query name, for reports.
    pub name: String,
    /// One schema per stream; `StreamId(i)` indexes this vector.
    pub schemas: Vec<StreamSchema>,
    /// Join predicates from the WHERE clause.
    pub predicates: Vec<JoinPredicate>,
    /// Local selection predicates, applied at ingest.
    pub selections: Vec<Selection>,
    /// Per-stream sliding windows; parallel to `schemas`.
    pub windows: Vec<WindowSpec>,
}

impl SpjQuery {
    /// Build and validate a query.
    ///
    /// # Errors
    /// * [`StreamError::InvalidQuery`] — empty FROM, too many streams,
    ///   self-join predicate, mismatched windows, disconnected join graph.
    /// * [`StreamError::UnknownStream`] / [`StreamError::UnknownAttribute`]
    ///   — dangling references in predicates.
    pub fn new(
        name: impl Into<String>,
        schemas: Vec<StreamSchema>,
        predicates: Vec<JoinPredicate>,
        windows: Vec<WindowSpec>,
    ) -> Result<Self, StreamError> {
        let q = SpjQuery {
            name: name.into(),
            schemas,
            predicates,
            selections: Vec::new(),
            windows,
        };
        q.validate()?;
        Ok(q)
    }

    /// Attach local selection predicates (builder style).
    ///
    /// # Errors
    /// Re-validates; dangling stream/attribute references are rejected.
    pub fn with_selections(mut self, selections: Vec<Selection>) -> Result<Self, StreamError> {
        self.selections = selections;
        self.validate()?;
        Ok(self)
    }

    /// True iff a tuple of `stream` with the given schema-aligned attribute
    /// values passes every selection on that stream.
    pub fn passes_selections(&self, stream: StreamId, attrs: &[AttrValue]) -> bool {
        self.selections
            .iter()
            .filter(|s| s.stream == stream)
            .all(|s| s.accepts(attrs))
    }

    fn validate(&self) -> Result<(), StreamError> {
        if self.schemas.is_empty() {
            return Err(StreamError::InvalidQuery("empty FROM clause".into()));
        }
        if self.schemas.len() > MAX_STREAMS {
            return Err(StreamError::InvalidQuery(format!(
                "{} streams exceeds the {MAX_STREAMS}-stream limit",
                self.schemas.len()
            )));
        }
        if self.windows.len() != self.schemas.len() {
            return Err(StreamError::InvalidQuery(
                "one window spec required per stream".into(),
            ));
        }
        let n = self.schemas.len() as u16;
        for p in &self.predicates {
            for &(s, a) in [&p.left, &p.right] {
                if s.0 >= n {
                    return Err(StreamError::UnknownStream(s.0));
                }
                if a.idx() >= self.schemas[s.idx()].arity() {
                    return Err(StreamError::UnknownAttribute {
                        stream: s.0,
                        attr: a.0,
                    });
                }
            }
            if p.left.0 == p.right.0 {
                return Err(StreamError::InvalidQuery(format!(
                    "self-join predicate on {}",
                    p.left.0
                )));
            }
        }
        for sel in &self.selections {
            if sel.stream.0 >= n {
                return Err(StreamError::UnknownStream(sel.stream.0));
            }
            if sel.attr.idx() >= self.schemas[sel.stream.idx()].arity() {
                return Err(StreamError::UnknownAttribute {
                    stream: sel.stream.0,
                    attr: sel.attr.0,
                });
            }
        }
        // Join graph must be connected (otherwise routing can never complete
        // a tuple: a probe against an unconnected state is a cross product).
        if self.schemas.len() > 1 {
            let mut reached = StreamMask::only(StreamId(0));
            let mut frontier = vec![StreamId(0)];
            while let Some(s) = frontier.pop() {
                for p in &self.predicates {
                    if let Some((_, other, _, _)) = p.from_perspective(s) {
                        if !reached.covers(other) {
                            reached = reached.with(other);
                            frontier.push(other);
                        }
                    }
                }
            }
            if reached.count() as usize != self.schemas.len() {
                return Err(StreamError::InvalidQuery(
                    "join graph is disconnected".into(),
                ));
            }
        }
        Ok(())
    }

    /// Number of joined streams.
    #[inline]
    pub fn n_streams(&self) -> usize {
        self.schemas.len()
    }

    /// The join attribute set of stream `s`: its attributes named by at
    /// least one predicate, ascending and deduplicated. JAS position *i*
    /// (used by access patterns) is the *i*-th entry of this vector.
    pub fn jas(&self, s: StreamId) -> Vec<AttrId> {
        let mut out: Vec<AttrId> = self
            .predicates
            .iter()
            .filter_map(|p| p.from_perspective(s).map(|(a, _, _, _)| a))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Precompute the routing-time join graph.
    pub fn join_graph(&self) -> JoinGraph {
        JoinGraph::new(self)
    }
}

/// One constraint a probe places on a target state's JAS attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeBinding {
    /// JAS position (within the target's JAS) being constrained.
    pub jas_pos: usize,
    /// Stream the constraining value comes from.
    pub src_stream: StreamId,
    /// Attribute of the source stream holding the value.
    pub src_attr: AttrId,
    /// Comparison, as seen from the target (`target.attr op value`).
    pub op: JoinOp,
}

/// Precomputed per-target probe metadata for a query.
///
/// For each target state the graph stores, per possible source stream, the
/// bindings its predicates induce. At routing time
/// [`JoinGraph::probe_pattern`] folds the bindings of every *covered* source
/// stream into the access pattern and value vector of a concrete search
/// request.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    n_streams: usize,
    /// `jas[s]` — JAS of stream `s`.
    jas: Vec<Vec<AttrId>>,
    /// `bindings[target][source]` — constraints on `target`'s JAS arising
    /// from predicates between `target` and `source`.
    bindings: Vec<Vec<Vec<ProbeBinding>>>,
}

impl JoinGraph {
    fn new(q: &SpjQuery) -> Self {
        let n = q.n_streams();
        let jas: Vec<Vec<AttrId>> = (0..n).map(|s| q.jas(StreamId(s as u16))).collect();
        let mut bindings = vec![vec![Vec::new(); n]; n];
        for (target_idx, target_jas) in jas.iter().enumerate() {
            let target = StreamId(target_idx as u16);
            for p in &q.predicates {
                if let Some((t_attr, src, src_attr, op)) = p.from_perspective(target) {
                    let jas_pos = target_jas
                        .iter()
                        .position(|&a| a == t_attr)
                        .expect("predicate attribute must be in JAS");
                    bindings[target_idx][src.idx()].push(ProbeBinding {
                        jas_pos,
                        src_stream: src,
                        src_attr,
                        op,
                    });
                }
            }
        }
        JoinGraph {
            n_streams: n,
            jas,
            bindings,
        }
    }

    /// Number of streams in the underlying query.
    #[inline]
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    /// JAS of stream `s`.
    #[inline]
    pub fn jas(&self, s: StreamId) -> &[AttrId] {
        &self.jas[s.idx()]
    }

    /// JAS width of stream `s`.
    #[inline]
    pub fn jas_width(&self, s: StreamId) -> usize {
        self.jas[s.idx()].len()
    }

    /// The bindings predicates between `target` and `source` induce on
    /// `target`'s JAS.
    #[inline]
    pub fn bindings(&self, target: StreamId, source: StreamId) -> &[ProbeBinding] {
        &self.bindings[target.idx()][source.idx()]
    }

    /// True iff `target` and `source` are directly joined.
    #[inline]
    pub fn joined(&self, target: StreamId, source: StreamId) -> bool {
        !self.bindings(target, source).is_empty()
    }

    /// The access pattern a probe from a partial tuple covering `covered`
    /// uses against `target` — the heart of the AMR/index coupling: the more
    /// streams the partial tuple already joined, the more of the target's
    /// JAS its search specifies.
    ///
    /// Only **equality** bindings contribute to the pattern (non-equality
    /// constraints cannot be hashed and are applied as residual filters).
    pub fn probe_pattern(&self, covered: StreamMask, target: StreamId) -> AccessPattern {
        let width = self.jas_width(target);
        debug_assert!(width <= MAX_ATTRS);
        let mut mask = 0u32;
        for src in covered.streams() {
            for b in self.bindings(target, src) {
                if b.op.indexable() {
                    mask |= 1 << b.jas_pos;
                }
            }
        }
        AccessPattern::new(mask, width)
    }

    /// Materialize the JAS-aligned value vector for a probe of `target` by
    /// partial tuple `pt` (wildcard slots zero), together with the residual
    /// non-equality bindings the caller must evaluate per candidate tuple.
    pub fn probe_values(
        &self,
        pt: &PartialTuple,
        target: StreamId,
    ) -> (AccessPattern, AttrVec, Vec<ProbeBinding>) {
        let width = self.jas_width(target);
        let mut values = AttrVec::new();
        for _ in 0..width {
            values.push(0);
        }
        let mut mask = 0u32;
        let mut residual = Vec::new();
        for src in pt.covered.streams() {
            let part = pt.part(src).expect("covered stream has a part");
            for b in self.bindings(target, src) {
                let v = part[b.src_attr.idx()];
                if b.op.indexable() {
                    mask |= 1 << b.jas_pos;
                    values.set(b.jas_pos, v);
                } else {
                    residual.push(*b);
                }
            }
        }
        (AccessPattern::new(mask, width), values, residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDomain, AttrSpec};
    use crate::time::VirtualTime;
    use crate::tuple::{Tuple, TupleId};

    /// The paper's evaluation query shape: 4 streams, each joined to the 3
    /// others via a unique attribute (3 join attributes per state).
    pub fn four_way() -> SpjQuery {
        let schema = |name: &str| {
            StreamSchema::new(
                name,
                (0..3)
                    .map(|i| AttrSpec::new(format!("j{i}"), AttrDomain::with_cardinality(1000)))
                    .collect(),
                100,
            )
        };
        let s = |i: u16| StreamId(i);
        let a = |i: u8| AttrId(i);
        // Stream i joins stream j (i<j) via attribute (j-1) on i and i on j:
        // picks a distinct attribute pair per edge so each state's JAS is
        // all three of its attributes.
        let preds = vec![
            JoinPredicate::eq(s(0), a(0), s(1), a(0)),
            JoinPredicate::eq(s(0), a(1), s(2), a(0)),
            JoinPredicate::eq(s(0), a(2), s(3), a(0)),
            JoinPredicate::eq(s(1), a(1), s(2), a(1)),
            JoinPredicate::eq(s(1), a(2), s(3), a(1)),
            JoinPredicate::eq(s(2), a(2), s(3), a(2)),
        ];
        SpjQuery::new(
            "four-way",
            vec![schema("A"), schema("B"), schema("C"), schema("D")],
            preds,
            vec![WindowSpec::secs(30); 4],
        )
        .unwrap()
    }

    #[test]
    fn four_way_query_validates_and_has_full_jas() {
        let q = four_way();
        assert_eq!(q.n_streams(), 4);
        for s in 0..4u16 {
            let jas = q.jas(StreamId(s));
            assert_eq!(jas, vec![AttrId(0), AttrId(1), AttrId(2)], "stream {s}");
        }
    }

    #[test]
    fn validation_rejects_structural_errors() {
        let q = four_way();
        // Self-join predicate:
        let mut bad = q.clone();
        bad.predicates.push(JoinPredicate::eq(
            StreamId(0),
            AttrId(0),
            StreamId(0),
            AttrId(1),
        ));
        assert!(matches!(bad.validate(), Err(StreamError::InvalidQuery(_))));
        // Dangling stream:
        let mut bad = q.clone();
        bad.predicates.push(JoinPredicate::eq(
            StreamId(0),
            AttrId(0),
            StreamId(9),
            AttrId(0),
        ));
        assert!(matches!(bad.validate(), Err(StreamError::UnknownStream(9))));
        // Dangling attribute:
        let mut bad = q.clone();
        bad.predicates.push(JoinPredicate::eq(
            StreamId(0),
            AttrId(7),
            StreamId(1),
            AttrId(0),
        ));
        assert!(matches!(
            bad.validate(),
            Err(StreamError::UnknownAttribute { stream: 0, attr: 7 })
        ));
        // Window count mismatch:
        let mut bad = q.clone();
        bad.windows.pop();
        assert!(bad.validate().is_err());
        // Disconnected graph:
        let mut bad = q.clone();
        bad.predicates.retain(|p| !p.touches(StreamId(3)));
        assert!(matches!(bad.validate(), Err(StreamError::InvalidQuery(_))));
        // Empty FROM:
        let empty = SpjQuery::new("x", vec![], vec![], vec![]);
        assert!(empty.is_err());
    }

    #[test]
    fn join_op_semantics() {
        assert!(JoinOp::Eq.indexable());
        assert!(!JoinOp::Lt.indexable());
        assert!(JoinOp::Lt.eval(1, 2));
        assert!(JoinOp::Ge.eval(2, 2));
        assert_eq!(JoinOp::Lt.flipped(), JoinOp::Gt);
        assert_eq!(JoinOp::Le.flipped(), JoinOp::Ge);
        assert_eq!(JoinOp::Eq.flipped(), JoinOp::Eq);
        // flip round-trips
        for op in [JoinOp::Eq, JoinOp::Lt, JoinOp::Gt, JoinOp::Le, JoinOp::Ge] {
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn probe_pattern_grows_with_coverage() {
        // The paper's §I example: t1 routed A⋈B then to C probes C with two
        // attributes; t2 routed directly to C probes with one.
        let q = four_way();
        let g = q.join_graph();
        let target = StreamId(2); // state C

        let only_a = StreamMask::only(StreamId(0));
        let p1 = g.probe_pattern(only_a, target);
        assert_eq!(p1.specified(), 1);

        let a_and_b = only_a.with(StreamId(1));
        let p2 = g.probe_pattern(a_and_b, target);
        assert_eq!(p2.specified(), 2);
        assert!(p1.benefits(p2), "wider coverage refines the pattern");

        let a_b_d = a_and_b.with(StreamId(3));
        let p3 = g.probe_pattern(a_b_d, target);
        assert_eq!(p3.specified(), 3);
        assert_eq!(p3, AccessPattern::full(3));
    }

    #[test]
    fn probe_values_carry_source_attributes() {
        let q = four_way();
        let g = q.join_graph();
        // Base tuple from stream A with attrs [10, 20, 30].
        let t = Tuple::new(
            TupleId(1),
            StreamId(0),
            VirtualTime::ZERO,
            AttrVec::from_slice(&[10, 20, 30]).unwrap(),
        );
        let pt = PartialTuple::from_base(&t);
        // Probing C: predicate A.a1 = C.a0 → C's JAS pos 0 gets value 20.
        let (pat, vals, residual) = g.probe_values(&pt, StreamId(2));
        assert_eq!(pat.specified(), 1);
        assert!(pat.uses(0));
        assert_eq!(vals[0], 20);
        assert!(residual.is_empty());
        // Probing D: predicate A.a2 = D.a0 → D's JAS pos 0 gets value 30.
        let (pat, vals, _) = g.probe_values(&pt, StreamId(3));
        assert!(pat.uses(0));
        assert_eq!(vals[0], 30);
    }

    #[test]
    fn non_equality_predicates_become_residuals() {
        let schema = |name: &str| {
            StreamSchema::new(
                name,
                vec![
                    AttrSpec::new("x", AttrDomain::with_cardinality(100)),
                    AttrSpec::new("y", AttrDomain::with_cardinality(100)),
                ],
                0,
            )
        };
        let q = SpjQuery::new(
            "mixed",
            vec![schema("A"), schema("B")],
            vec![
                JoinPredicate::eq(StreamId(0), AttrId(0), StreamId(1), AttrId(0)),
                JoinPredicate {
                    left: (StreamId(0), AttrId(1)),
                    op: JoinOp::Lt,
                    right: (StreamId(1), AttrId(1)),
                },
            ],
            vec![WindowSpec::secs(10); 2],
        )
        .unwrap();
        let g = q.join_graph();
        let t = Tuple::new(
            TupleId(1),
            StreamId(0),
            VirtualTime::ZERO,
            AttrVec::from_slice(&[5, 7]).unwrap(),
        );
        let pt = PartialTuple::from_base(&t);
        let (pat, vals, residual) = g.probe_values(&pt, StreamId(1));
        // Only the equality contributes to the pattern.
        assert_eq!(pat.specified(), 1);
        assert_eq!(vals[0], 5);
        assert_eq!(residual.len(), 1);
        // From B's perspective A.y < B.y reads B.y > 7.
        assert_eq!(residual[0].op, JoinOp::Gt);
        assert_eq!(residual[0].src_attr, AttrId(1));
    }

    #[test]
    fn selections_filter_and_validate() {
        let q = four_way();
        // priority >= 5 on stream A.
        let q = q
            .clone()
            .with_selections(vec![Selection {
                stream: StreamId(0),
                attr: AttrId(0),
                op: JoinOp::Ge,
                value: 5,
            }])
            .unwrap();
        assert!(q.passes_selections(StreamId(0), &[5, 0, 0]));
        assert!(!q.passes_selections(StreamId(0), &[4, 0, 0]));
        // Other streams unaffected.
        assert!(q.passes_selections(StreamId(1), &[0, 0, 0]));
        // Several selections on one stream conjoin.
        let q2 = q
            .clone()
            .with_selections(vec![
                Selection {
                    stream: StreamId(0),
                    attr: AttrId(0),
                    op: JoinOp::Ge,
                    value: 5,
                },
                Selection {
                    stream: StreamId(0),
                    attr: AttrId(1),
                    op: JoinOp::Lt,
                    value: 10,
                },
            ])
            .unwrap();
        assert!(q2.passes_selections(StreamId(0), &[5, 9, 0]));
        assert!(!q2.passes_selections(StreamId(0), &[5, 10, 0]));
        // Dangling references rejected.
        assert!(four_way()
            .with_selections(vec![Selection {
                stream: StreamId(9),
                attr: AttrId(0),
                op: JoinOp::Eq,
                value: 0,
            }])
            .is_err());
        assert!(four_way()
            .with_selections(vec![Selection {
                stream: StreamId(0),
                attr: AttrId(7),
                op: JoinOp::Eq,
                value: 0,
            }])
            .is_err());
    }

    #[test]
    fn jas_deduplicates_shared_attributes() {
        // One attribute of A joins both B and C: JAS must list it once.
        let schema = |name: &str, arity: u8| {
            StreamSchema::new(
                name,
                (0..arity)
                    .map(|i| AttrSpec::new(format!("c{i}"), AttrDomain::with_cardinality(10)))
                    .collect(),
                0,
            )
        };
        let q = SpjQuery::new(
            "shared",
            vec![schema("A", 1), schema("B", 1), schema("C", 1)],
            vec![
                JoinPredicate::eq(StreamId(0), AttrId(0), StreamId(1), AttrId(0)),
                JoinPredicate::eq(StreamId(0), AttrId(0), StreamId(2), AttrId(0)),
            ],
            vec![WindowSpec::secs(10); 3],
        )
        .unwrap();
        assert_eq!(q.jas(StreamId(0)), vec![AttrId(0)]);
        let g = q.join_graph();
        assert_eq!(g.jas_width(StreamId(0)), 1);
        assert!(g.joined(StreamId(0), StreamId(1)));
        assert!(!g.joined(StreamId(1), StreamId(2)));
    }
}
