//! Deterministic virtual time.
//!
//! The AMRI paper measures *cumulative throughput over minutes of execution*
//! on a single-core CAPE engine. We reproduce that with a virtual clock: the
//! executor charges every operation a cost in **ticks** and advances the
//! clock by exactly that amount. One tick models one microsecond of CPU on
//! the paper's reference machine, so `TICKS_PER_SEC = 1_000_000`.
//!
//! All ordering comparisons, window expirations and sampling intervals are
//! derived from this clock — the simulation is bit-for-bit reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of ticks in one virtual second (1 tick ≙ 1 µs of modeled CPU).
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An instant on the virtual timeline, in ticks since the run started.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(pub u64);

/// A span of virtual time, in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualDuration(pub u64);

impl VirtualTime {
    /// The origin of the timeline.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Construct from whole virtual seconds.
    #[inline]
    pub fn from_secs(secs: u64) -> Self {
        VirtualTime(secs * TICKS_PER_SEC)
    }

    /// Construct from whole virtual minutes.
    #[inline]
    pub fn from_mins(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }

    /// This instant expressed in (possibly fractional) virtual seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// This instant expressed in (possibly fractional) virtual minutes.
    #[inline]
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }
}

impl VirtualDuration {
    /// The zero-length duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Construct from whole virtual seconds.
    #[inline]
    pub fn from_secs(secs: u64) -> Self {
        VirtualDuration(secs * TICKS_PER_SEC)
    }

    /// Construct from whole virtual minutes.
    #[inline]
    pub fn from_mins(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }

    /// Construct from (possibly fractional) virtual seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or non-finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        VirtualDuration((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// The duration in (possibly fractional) virtual seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True iff this duration is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn sub(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    #[inline]
    fn sub(self, rhs: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualDuration {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl SubAssign for VirtualDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: VirtualDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn mul(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 * rhs)
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn div(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 / rhs)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A source of "now" the runtime advances explicitly.
///
/// The operator pipeline is written against this trait so the same code can
/// run in two modes: **simulation**, where [`VirtualClock`] advances by
/// exactly the ticks each cost receipt charges (bit-for-bit reproducible),
/// and **wall-clock**, where an implementation anchored to real time ignores
/// modeled charges because real CPUs charge themselves (the engine's
/// `WallClock` implements that mode; its `SkewedClock` wrapper injects
/// clock-skew faults on top of either).
pub trait Clock {
    /// Current instant.
    fn now(&self) -> VirtualTime;

    /// Charge `d` of modeled work and return the new instant.
    fn advance(&mut self, d: VirtualDuration) -> VirtualTime;

    /// Jump forward to `t`; never moves backwards.
    fn advance_to(&mut self, t: VirtualTime);
}

/// The single source of "now" for a simulation run.
///
/// Only the executor advances the clock; every other component reads it.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: VirtualTime,
}

impl VirtualClock {
    /// A clock at the origin.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual instant.
    #[inline]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Advance the clock by `d` and return the new instant.
    #[inline]
    pub fn advance(&mut self, d: VirtualDuration) -> VirtualTime {
        self.now += d;
        self.now
    }

    /// Jump the clock forward to `t` (no-op if `t` is in the past — the
    /// clock never goes backwards).
    #[inline]
    pub fn advance_to(&mut self, t: VirtualTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

impl Clock for VirtualClock {
    #[inline]
    fn now(&self) -> VirtualTime {
        VirtualClock::now(self)
    }

    #[inline]
    fn advance(&mut self, d: VirtualDuration) -> VirtualTime {
        VirtualClock::advance(self, d)
    }

    #[inline]
    fn advance_to(&mut self, t: VirtualTime) {
        VirtualClock::advance_to(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(VirtualTime::from_secs(2).0, 2 * TICKS_PER_SEC);
        assert_eq!(VirtualTime::from_mins(3), VirtualTime::from_secs(180));
        assert_eq!(
            VirtualDuration::from_mins(1),
            VirtualDuration::from_secs(60)
        );
        assert!((VirtualTime::from_secs(90).as_mins_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = VirtualTime::from_secs(10);
        let d = VirtualDuration::from_secs(4);
        assert_eq!(t + d, VirtualTime::from_secs(14));
        assert_eq!(t - d, VirtualTime::from_secs(6));
        assert_eq!(t - VirtualTime::from_secs(4), VirtualDuration::from_secs(6));
        assert_eq!(d * 3, VirtualDuration::from_secs(12));
        assert_eq!((d * 3) / 4, VirtualDuration::from_secs(3));
    }

    #[test]
    fn subtraction_saturates() {
        let early = VirtualTime::from_secs(1);
        let late = VirtualTime::from_secs(5);
        assert_eq!(early - late, VirtualDuration::ZERO);
        assert_eq!(early.since(late), VirtualDuration::ZERO);
        assert_eq!(late.since(early), VirtualDuration::from_secs(4));
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), VirtualTime::ZERO);
        c.advance(VirtualDuration::from_secs(2));
        c.advance_to(VirtualTime::from_secs(1)); // must not go backwards
        assert_eq!(c.now(), VirtualTime::from_secs(2));
        c.advance_to(VirtualTime::from_secs(7));
        assert_eq!(c.now(), VirtualTime::from_secs(7));
    }

    #[test]
    fn virtual_clock_implements_the_clock_trait() {
        fn drive(c: &mut dyn Clock) -> VirtualTime {
            c.advance(VirtualDuration::from_secs(3));
            c.advance_to(VirtualTime::from_secs(2)); // never backwards
            c.now()
        }
        let mut c = VirtualClock::new();
        assert_eq!(drive(&mut c), VirtualTime::from_secs(3));
    }

    #[test]
    fn fractional_seconds() {
        let d = VirtualDuration::from_secs_f64(0.5);
        assert_eq!(d.0, TICKS_PER_SEC / 2);
        assert!((d.as_secs_f64() - 0.5).abs() < 1e-12);
        assert!(!d.is_zero());
        assert!(VirtualDuration::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = VirtualDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtualTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(VirtualDuration::from_secs_f64(0.25).to_string(), "0.250s");
    }
}
