//! Sliding-window bookkeeping.
//!
//! States keep only the tuples that arrived within the last `W` time units
//! (standard sliding-window semantics, §II). [`WindowBuffer`] is the shared
//! expiration queue: arrival-ordered items plus an `expire` sweep that
//! returns everything that has fallen out of the window so the owning state
//! can delete it from its index.

use crate::error::StreamError;
use crate::time::{VirtualDuration, VirtualTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sliding-window specification for one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Window length `W` — a tuple with arrival `ts` is live while
    /// `now < ts + length`.
    pub length: VirtualDuration,
}

impl WindowSpec {
    /// Build a window spec.
    ///
    /// # Errors
    /// [`StreamError::InvalidWindow`] for a zero-length window.
    pub fn new(length: VirtualDuration) -> Result<Self, StreamError> {
        if length.is_zero() {
            return Err(StreamError::InvalidWindow);
        }
        Ok(WindowSpec { length })
    }

    /// Window of `secs` virtual seconds.
    pub fn secs(secs: u64) -> Self {
        WindowSpec {
            length: VirtualDuration::from_secs(secs),
        }
    }

    /// True iff a tuple with arrival `ts` is still live at `now`.
    #[inline]
    pub fn live(&self, ts: VirtualTime, now: VirtualTime) -> bool {
        ts + self.length > now
    }
}

/// Arrival-ordered expiration queue for a windowed state.
///
/// `T` is whatever handle the owning state needs back on expiry (a slab key,
/// a tuple id, ...).
#[derive(Debug, Clone)]
pub struct WindowBuffer<T> {
    spec: WindowSpec,
    queue: VecDeque<(VirtualTime, T)>,
}

impl<T> WindowBuffer<T> {
    /// New empty buffer for `spec`.
    pub fn new(spec: WindowSpec) -> Self {
        WindowBuffer {
            spec,
            queue: VecDeque::new(),
        }
    }

    /// The window specification.
    #[inline]
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Number of live items.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True iff no items are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Record an arrival. Arrivals must be pushed in non-decreasing `ts`
    /// order (the executor guarantees this).
    ///
    /// # Panics
    /// Panics (debug builds) if `ts` precedes the last pushed arrival.
    #[inline]
    pub fn push(&mut self, ts: VirtualTime, item: T) {
        debug_assert!(
            self.queue.back().is_none_or(|(last, _)| *last <= ts),
            "window arrivals must be time-ordered"
        );
        self.queue.push_back((ts, item));
    }

    /// Pop every item that has expired at `now`, oldest first.
    pub fn expire(&mut self, now: VirtualTime) -> impl Iterator<Item = (VirtualTime, T)> + '_ {
        let spec = self.spec;
        std::iter::from_fn(move || {
            if let Some((ts, _)) = self.queue.front() {
                if !spec.live(*ts, now) {
                    return self.queue.pop_front();
                }
            }
            None
        })
    }

    /// Arrival time of the oldest live item, if any.
    #[inline]
    pub fn oldest_ts(&self) -> Option<VirtualTime> {
        self.queue.front().map(|(ts, _)| *ts)
    }

    /// Remove and return the oldest item regardless of whether its window
    /// has elapsed — the eviction primitive for memory-pressure shedding.
    #[inline]
    pub fn pop_oldest(&mut self) -> Option<(VirtualTime, T)> {
        self.queue.pop_front()
    }

    /// Iterate the live items in arrival order without draining them —
    /// the read-only walk a storage tier uses to pick spill victims.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &(VirtualTime, T)> {
        self.queue.iter()
    }

    /// Keep only the items for which `keep` returns true, preserving
    /// arrival order. The purge primitive for a storage tier that lost a
    /// block: the owning state removes exactly the affected handles.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        self.queue.retain(|(_, item)| keep(item));
    }

    /// Count of items that would expire at `now` without removing them.
    pub fn expired_count(&self, now: VirtualTime) -> usize {
        self.queue
            .iter()
            .take_while(|(ts, _)| !self.spec.live(*ts, now))
            .count()
    }

    /// Serialize the expiration queue (arrival order) into a snapshot
    /// section, writing each item with `put`. The spec is static
    /// configuration and is not captured.
    pub fn save_items(
        &self,
        w: &mut crate::snapshot::SectionWriter,
        mut put: impl FnMut(&mut crate::snapshot::SectionWriter, &T),
    ) {
        w.put_usize(self.queue.len());
        for (ts, item) in &self.queue {
            w.put_time(*ts);
            put(w, item);
        }
    }

    /// Rebuild a buffer for `spec` from a section written by
    /// [`save_items`](Self::save_items), reading each item with `get`.
    ///
    /// # Errors
    /// Propagates decode failures and rejects out-of-order timestamps.
    pub fn load_items(
        spec: WindowSpec,
        r: &mut crate::snapshot::SectionReader<'_>,
        mut get: impl FnMut(
            &mut crate::snapshot::SectionReader<'_>,
        ) -> Result<T, crate::snapshot::SnapshotError>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let n = r.get_usize()?;
        let mut buf = WindowBuffer::new(spec);
        let mut last = VirtualTime::ZERO;
        for _ in 0..n {
            let ts = r.get_time()?;
            if ts < last {
                return Err(crate::snapshot::SnapshotError::Malformed(
                    "window arrivals out of order".into(),
                ));
            }
            last = ts;
            let item = get(r)?;
            buf.queue.push_back((ts, item));
        }
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(secs: u64) -> WindowBuffer<u32> {
        WindowBuffer::new(WindowSpec::secs(secs))
    }

    #[test]
    fn spec_rejects_zero_length() {
        assert_eq!(
            WindowSpec::new(VirtualDuration::ZERO),
            Err(StreamError::InvalidWindow)
        );
        assert!(WindowSpec::new(VirtualDuration::from_secs(1)).is_ok());
    }

    #[test]
    fn liveness_is_half_open() {
        let w = WindowSpec::secs(10);
        let t0 = VirtualTime::from_secs(5);
        assert!(w.live(t0, VirtualTime::from_secs(14)));
        // Exactly at ts + W the tuple is gone (half-open interval).
        assert!(!w.live(t0, VirtualTime::from_secs(15)));
    }

    #[test]
    fn expiration_pops_in_arrival_order() {
        let mut b = buf(10);
        b.push(VirtualTime::from_secs(0), 100);
        b.push(VirtualTime::from_secs(4), 101);
        b.push(VirtualTime::from_secs(8), 102);
        assert_eq!(b.len(), 3);
        assert_eq!(b.expired_count(VirtualTime::from_secs(13)), 1);
        let gone: Vec<_> = b.expire(VirtualTime::from_secs(13)).collect();
        assert_eq!(gone, vec![(VirtualTime::from_secs(0), 100)]);
        assert_eq!(b.len(), 2);
        let gone: Vec<_> = b
            .expire(VirtualTime::from_secs(100))
            .map(|(_, x)| x)
            .collect();
        assert_eq!(gone, vec![101, 102]);
        assert!(b.is_empty());
    }

    #[test]
    fn expire_is_idempotent() {
        let mut b = buf(5);
        b.push(VirtualTime::from_secs(1), 7);
        assert_eq!(b.expire(VirtualTime::from_secs(2)).count(), 0);
        assert_eq!(b.expire(VirtualTime::from_secs(2)).count(), 0);
        assert_eq!(b.expire(VirtualTime::from_secs(6)).count(), 1);
        assert_eq!(b.expire(VirtualTime::from_secs(6)).count(), 0);
    }

    #[test]
    fn pop_oldest_evicts_live_items_in_arrival_order() {
        let mut b = buf(100);
        assert_eq!(b.oldest_ts(), None);
        assert_eq!(b.pop_oldest(), None);
        for s in 0..3 {
            b.push(VirtualTime::from_secs(s), s as u32);
        }
        assert_eq!(b.oldest_ts(), Some(VirtualTime::from_secs(0)));
        // All three are live under the 100 s window, yet eviction takes them.
        assert_eq!(b.pop_oldest(), Some((VirtualTime::from_secs(0), 0)));
        assert_eq!(b.oldest_ts(), Some(VirtualTime::from_secs(1)));
        assert_eq!(b.pop_oldest(), Some((VirtualTime::from_secs(1), 1)));
        assert_eq!(b.len(), 1);
        // Expiry still works on whatever eviction left behind.
        let rest: Vec<_> = b
            .expire(VirtualTime::from_secs(200))
            .map(|(_, x)| x)
            .collect();
        assert_eq!(rest, vec![2]);
    }

    #[test]
    fn partial_drain_resumes_correctly() {
        let mut b = buf(1);
        for s in 0..5 {
            b.push(VirtualTime::from_secs(s), s as u32);
        }
        // Take only the first expired item, drop the iterator, expire again.
        let first = b.expire(VirtualTime::from_secs(10)).next();
        assert_eq!(first.map(|(_, x)| x), Some(0));
        let rest: Vec<_> = b
            .expire(VirtualTime::from_secs(10))
            .map(|(_, x)| x)
            .collect();
        assert_eq!(rest, vec![1, 2, 3, 4]);
    }
}
