//! Access patterns and the search-benefit relation (§II, §IV of the paper).
//!
//! An *access pattern* (`ap`) names the subset of a state's join attribute
//! set (JAS) that a search request specifies. The paper maps each pattern to
//! a unique binary representation `BR(ap)`: bit *i* is 1 iff JAS attribute
//! *i* is used to search. We store exactly that — an [`AccessPattern`] is a
//! `u32` bitmask plus the JAS width it ranges over.
//!
//! Definition 1 (search benefit): `ap₁ ≺ ap₂` iff every attribute of `ap₁`
//! appears in `ap₂`, i.e. `BR(ap₁)` is a submask of `BR(ap₂)`. This relation
//! organizes all patterns into the lattice used by DIA/CDIA: the *top* is the
//! empty pattern (full scan), the *bottom* the pattern naming every join
//! attribute. A node's *parents* (one attribute removed) provide search
//! benefit to it.

use crate::error::StreamError;
use crate::value::{AttrValue, AttrVec, MAX_ATTRS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum JAS width supported (bits of the mask actually used).
///
/// The paper's scenarios use 3 join attributes (7 non-empty patterns);
/// `MAX_ATTRS` leaves generous headroom (255 non-empty patterns at width 8).
pub const MAX_JAS: usize = MAX_ATTRS;

/// A search access pattern: which JAS attributes a request specifies.
///
/// `mask` is the paper's `BR(ap)`; `n_attrs` is the JAS width the mask
/// ranges over (needed to enumerate wildcards and to display `<A, *, C>`
/// notation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccessPattern {
    mask: u32,
    n_attrs: u8,
}

impl AccessPattern {
    /// Pattern from a raw `BR(ap)` mask over a JAS of width `n_attrs`.
    ///
    /// # Panics
    /// Panics if `n_attrs > MAX_JAS` or the mask has bits outside the width.
    #[inline]
    pub fn new(mask: u32, n_attrs: usize) -> Self {
        assert!(n_attrs <= MAX_JAS, "JAS width {n_attrs} exceeds {MAX_JAS}");
        assert!(
            n_attrs == 32 || mask < (1u32 << n_attrs),
            "mask {mask:#b} out of range for width {n_attrs}"
        );
        AccessPattern {
            mask,
            n_attrs: n_attrs as u8,
        }
    }

    /// The empty pattern (`<*, ..., *>`, a full scan) over `n_attrs`.
    #[inline]
    pub fn empty(n_attrs: usize) -> Self {
        Self::new(0, n_attrs)
    }

    /// The complete pattern naming every JAS attribute.
    #[inline]
    pub fn full(n_attrs: usize) -> Self {
        assert!(n_attrs <= MAX_JAS);
        Self::new(((1u64 << n_attrs) - 1) as u32, n_attrs)
    }

    /// Pattern from the list of JAS positions used to search.
    ///
    /// # Errors
    /// [`StreamError::UnknownAttribute`] if a position is ≥ `n_attrs`.
    pub fn from_positions(positions: &[usize], n_attrs: usize) -> Result<Self, StreamError> {
        let mut mask = 0u32;
        for &p in positions {
            if p >= n_attrs {
                return Err(StreamError::UnknownAttribute {
                    stream: u16::MAX,
                    attr: p as u8,
                });
            }
            mask |= 1 << p;
        }
        Ok(Self::new(mask, n_attrs))
    }

    /// The `BR(ap)` bitmask.
    #[inline]
    pub fn mask(self) -> u32 {
        self.mask
    }

    /// Width of the JAS this pattern ranges over.
    #[inline]
    pub fn n_attrs(self) -> usize {
        self.n_attrs as usize
    }

    /// Number of attributes the pattern specifies (the paper's `N_{A,ap}`).
    #[inline]
    pub fn specified(self) -> u32 {
        self.mask.count_ones()
    }

    /// Number of wildcard positions.
    #[inline]
    pub fn wildcards(self) -> u32 {
        self.n_attrs as u32 - self.specified()
    }

    /// True iff the pattern specifies no attribute (full scan).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.mask == 0
    }

    /// True iff JAS position `i` is specified.
    #[inline]
    pub fn uses(self, i: usize) -> bool {
        debug_assert!(i < self.n_attrs as usize);
        self.mask & (1 << i) != 0
    }

    /// Definition 1: `self ≺ other` — an index built on `self`'s attributes
    /// provides a search benefit to requests with pattern `other`.
    ///
    /// Holds iff `self`'s attributes are a subset of `other`'s. Reflexive.
    #[inline]
    pub fn benefits(self, other: AccessPattern) -> bool {
        debug_assert_eq!(self.n_attrs, other.n_attrs, "patterns from different JAS");
        self.mask & !other.mask == 0
    }

    /// Strict version of [`benefits`](Self::benefits): proper subset.
    #[inline]
    pub fn strictly_benefits(self, other: AccessPattern) -> bool {
        self.mask != other.mask && self.benefits(other)
    }

    /// Lattice level: the paper's lattice has the empty pattern on top
    /// (level 0) and grows one attribute per level, so the level is simply
    /// the number of specified attributes.
    #[inline]
    pub fn level(self) -> u32 {
        self.specified()
    }

    /// Direct parents in the lattice: this pattern with exactly one
    /// specified attribute removed. Parents provide search benefit to
    /// `self`. The empty pattern has no parents.
    pub fn direct_parents(self) -> impl Iterator<Item = AccessPattern> {
        let n = self.n_attrs;
        let mask = self.mask;
        SetBits(mask).map(move |b| AccessPattern {
            mask: mask & !(1 << b),
            n_attrs: n,
        })
    }

    /// Direct children in the lattice: this pattern with exactly one more
    /// attribute specified. The full pattern has no children.
    pub fn direct_children(self) -> impl Iterator<Item = AccessPattern> {
        let n = self.n_attrs;
        let mask = self.mask;
        let unset = (((1u64 << n) - 1) as u32) & !mask;
        SetBits(unset).map(move |b| AccessPattern {
            mask: mask | (1 << b),
            n_attrs: n,
        })
    }

    /// Iterator over the JAS positions the pattern specifies, ascending.
    pub fn positions(self) -> impl Iterator<Item = usize> {
        SetBits(self.mask).map(|b| b as usize)
    }

    /// All `2^n` patterns over a JAS of width `n`, in `BR(ap)` order.
    pub fn all(n_attrs: usize) -> impl Iterator<Item = AccessPattern> {
        assert!(n_attrs <= MAX_JAS);
        (0..(1u64 << n_attrs) as u32).map(move |m| AccessPattern {
            mask: m,
            n_attrs: n_attrs as u8,
        })
    }

    /// All patterns that provide a search benefit to `self` (all submasks,
    /// including `self` and the empty pattern).
    pub fn benefactors(self) -> impl Iterator<Item = AccessPattern> {
        // Standard submask enumeration: descending via (s - 1) & mask.
        SubMasks {
            mask: self.mask,
            next: Some(self.mask),
        }
        .map(move |m| AccessPattern {
            mask: m,
            n_attrs: self.n_attrs,
        })
    }
}

/// Iterator over the set-bit indices of a mask, ascending.
struct SetBits(u32);

impl Iterator for SetBits {
    type Item = u32;
    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            let b = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(b)
        }
    }
}

/// Iterator over all submasks of a mask (including the mask itself and 0).
struct SubMasks {
    mask: u32,
    next: Option<u32>,
}

impl Iterator for SubMasks {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        let cur = self.next?;
        self.next = if cur == 0 {
            None
        } else {
            Some((cur - 1) & self.mask)
        };
        Some(cur)
    }
}

/// Shared `<A, *, C>`-style formatter for Debug and Display.
macro_rules! fmt_pattern {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "<")?;
            for i in 0..self.n_attrs as usize {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if self.uses(i) {
                    // Name attributes A, B, C... like the paper's examples.
                    write!(f, "{}", (b'A' + i as u8) as char)?;
                } else {
                    write!(f, "*")?;
                }
            }
            write!(f, ">")
        }
    };
}

impl fmt::Debug for AccessPattern {
    fmt_pattern!();
}

impl fmt::Display for AccessPattern {
    fmt_pattern!();
}

/// A search request arriving at a state: the pattern plus the attribute
/// values to match on.
///
/// `values` is aligned with the state's JAS: `values[i]` is meaningful iff
/// `pattern.uses(i)`; wildcard positions are ignored (by convention zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchRequest {
    /// Which JAS attributes the request specifies.
    pub pattern: AccessPattern,
    /// Values for the specified attributes, JAS-aligned.
    pub values: AttrVec,
}

impl SearchRequest {
    /// Build a request; wildcard positions of `values` are zeroed so that
    /// logically-equal requests compare equal.
    pub fn new(pattern: AccessPattern, mut values: AttrVec) -> Self {
        assert_eq!(
            values.len(),
            pattern.n_attrs(),
            "values must be JAS-aligned"
        );
        for i in 0..values.len() {
            if !pattern.uses(i) {
                values.set(i, 0);
            }
        }
        SearchRequest { pattern, values }
    }

    /// Value for JAS position `i` if the request specifies it.
    #[inline]
    pub fn value_at(&self, i: usize) -> Option<AttrValue> {
        if self.pattern.uses(i) {
            Some(self.values[i])
        } else {
            None
        }
    }

    /// True iff a JAS-aligned tuple attribute slice satisfies this request
    /// under equality semantics.
    #[inline]
    pub fn matches(&self, jas_values: &[AttrValue]) -> bool {
        debug_assert_eq!(jas_values.len(), self.pattern.n_attrs());
        self.pattern
            .positions()
            .all(|i| jas_values[i] == self.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn br_mapping_matches_paper_examples() {
        // §IV-C1: with JAS {A,B,C}, <A,*,*> → 100 (4), <*,B,C> → 011 (3).
        let a_only = AccessPattern::from_positions(&[0], 3).unwrap();
        let bc = AccessPattern::from_positions(&[1, 2], 3).unwrap();
        // The paper writes BR left-to-right with A as the most significant
        // bit; we store A as bit 0, so the *value* differs but uniqueness
        // and subset structure are identical. Check subset structure:
        assert_eq!(a_only.specified(), 1);
        assert_eq!(bc.specified(), 2);
        assert!(!a_only.benefits(bc));
        assert!(!bc.benefits(a_only));
    }

    #[test]
    fn display_uses_wildcard_notation() {
        let p = AccessPattern::from_positions(&[0, 2], 3).unwrap();
        assert_eq!(p.to_string(), "<A, *, C>");
        assert_eq!(AccessPattern::empty(3).to_string(), "<*, *, *>");
        assert_eq!(AccessPattern::full(3).to_string(), "<A, B, C>");
    }

    #[test]
    fn benefit_relation_is_subset() {
        let a = AccessPattern::from_positions(&[0], 3).unwrap();
        let ab = AccessPattern::from_positions(&[0, 1], 3).unwrap();
        let abc = AccessPattern::full(3);
        assert!(a.benefits(ab));
        assert!(a.benefits(abc));
        assert!(ab.benefits(abc));
        assert!(!ab.benefits(a));
        assert!(AccessPattern::empty(3).benefits(a));
        // Reflexive but not strict:
        assert!(ab.benefits(ab));
        assert!(!ab.strictly_benefits(ab));
        assert!(a.strictly_benefits(ab));
    }

    #[test]
    fn parents_and_children_step_one_level() {
        let ab = AccessPattern::from_positions(&[0, 1], 3).unwrap();
        let parents: Vec<_> = ab.direct_parents().collect();
        assert_eq!(parents.len(), 2);
        for p in &parents {
            assert_eq!(p.level(), 1);
            assert!(p.strictly_benefits(ab));
        }
        let children: Vec<_> = ab.direct_children().collect();
        assert_eq!(children.len(), 1);
        assert_eq!(children[0], AccessPattern::full(3));
        assert!(AccessPattern::empty(3).direct_parents().next().is_none());
        assert!(AccessPattern::full(3).direct_children().next().is_none());
    }

    #[test]
    fn all_enumerates_the_powerset() {
        let all: Vec<_> = AccessPattern::all(3).collect();
        assert_eq!(all.len(), 8);
        // 7 non-empty patterns — the paper's "7 possible access patterns"
        // for 3 join attributes.
        assert_eq!(all.iter().filter(|p| !p.is_empty()).count(), 7);
    }

    #[test]
    fn benefactors_are_exactly_the_submasks() {
        let p = AccessPattern::from_positions(&[0, 2], 3).unwrap();
        let mut b: Vec<u32> = p.benefactors().map(|q| q.mask()).collect();
        b.sort_unstable();
        assert_eq!(b, vec![0b000, 0b001, 0b100, 0b101]);
    }

    #[test]
    fn positions_round_trip() {
        let p = AccessPattern::from_positions(&[1, 2], 4).unwrap();
        let pos: Vec<_> = p.positions().collect();
        assert_eq!(pos, vec![1, 2]);
        assert_eq!(p.wildcards(), 2);
        assert!(p.uses(1));
        assert!(!p.uses(0));
    }

    #[test]
    fn from_positions_rejects_out_of_range() {
        assert!(AccessPattern::from_positions(&[3], 3).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_wide_masks() {
        let _ = AccessPattern::new(0b1000, 3);
    }

    #[test]
    fn search_request_zeroes_wildcards_and_matches() {
        let p = AccessPattern::from_positions(&[0, 2], 3).unwrap();
        let sr = SearchRequest::new(p, AttrVec::from_slice(&[7, 99, 5]).unwrap());
        // Wildcard slot must be zeroed for canonical equality.
        assert_eq!(sr.values[1], 0);
        assert_eq!(sr.value_at(0), Some(7));
        assert_eq!(sr.value_at(1), None);
        assert!(sr.matches(&[7, 123, 5]));
        assert!(!sr.matches(&[7, 123, 6]));
        assert!(!sr.matches(&[8, 123, 5]));
        // Full-scan request matches everything.
        let scan = SearchRequest::new(
            AccessPattern::empty(3),
            AttrVec::from_slice(&[0, 0, 0]).unwrap(),
        );
        assert!(scan.matches(&[1, 2, 3]));
    }

    proptest! {
        #[test]
        fn benefit_is_a_partial_order(a in 0u32..16, b in 0u32..16, c in 0u32..16) {
            let pa = AccessPattern::new(a, 4);
            let pb = AccessPattern::new(b, 4);
            let pc = AccessPattern::new(c, 4);
            // reflexivity
            prop_assert!(pa.benefits(pa));
            // antisymmetry
            if pa.benefits(pb) && pb.benefits(pa) {
                prop_assert_eq!(pa, pb);
            }
            // transitivity
            if pa.benefits(pb) && pb.benefits(pc) {
                prop_assert!(pa.benefits(pc));
            }
        }

        #[test]
        fn parents_partition_one_bit_down(mask in 0u32..256) {
            let p = AccessPattern::new(mask, 8);
            let parents: Vec<_> = p.direct_parents().collect();
            prop_assert_eq!(parents.len() as u32, p.specified());
            for q in parents {
                prop_assert_eq!(q.level() + 1, p.level());
                prop_assert!(q.strictly_benefits(p));
            }
        }

        #[test]
        fn children_are_inverse_of_parents(mask in 0u32..256) {
            let p = AccessPattern::new(mask, 8);
            for c in p.direct_children() {
                prop_assert!(c.direct_parents().any(|q| q == p));
            }
        }

        #[test]
        fn benefactor_count_is_two_pow_specified(mask in 0u32..256) {
            let p = AccessPattern::new(mask, 8);
            let n = p.benefactors().count();
            prop_assert_eq!(n as u32, 1 << p.specified());
        }
    }
}
