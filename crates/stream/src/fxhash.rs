//! A fast, deterministic non-cryptographic hasher.
//!
//! This is the FxHash algorithm used by rustc (multiply–rotate over word-size
//! chunks). The AMRI hot paths — bucket-id computation, access-pattern
//! statistics tables, hash-index baselines — hash small integer keys at very
//! high rates, where SipHash's HashDoS protection is pure overhead. The
//! implementation is local (≈60 lines) rather than a dependency, per the
//! workspace dependency policy in `DESIGN.md`.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc-hash hashing state: one 64-bit word, updated with
/// rotate–xor–multiply per input word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = chunk
                .try_into()
                .expect("chunks_exact(8) yields exactly 8-byte chunks");
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash a single `u64` to a well-mixed `u64`.
///
/// This is the scalar entry point used for bucket-id derivation in the
/// bit-address index: the *top* bits of the result are the best-mixed, so
/// callers that need `b` bits should take `fx_hash_u64(v) >> (64 - b)`.
#[inline]
pub fn fx_hash_u64(value: u64) -> u64 {
    // A single multiply leaves the low bits poorly mixed; finish with a
    // xor-shift avalanche (splitmix64 finalizer) so every output bit depends
    // on every input bit.
    let mut x = value.wrapping_mul(SEED);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(fx_hash_u64(i));
        }
        assert_eq!(seen.len(), 10_000, "fx_hash_u64 collided on small ints");
    }

    #[test]
    fn top_bits_are_well_distributed() {
        // Bucket small consecutive integers by their top 8 bits: every
        // bucket should receive roughly n/256 items.
        let mut counts = [0u32; 256];
        let n = 256 * 64;
        for i in 0..n as u64 {
            counts[(fx_hash_u64(i) >> 56) as usize] += 1;
        }
        let expected = (n / 256) as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.4 && (c as f64) < expected * 1.8,
                "bucket {b} got {c}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn byte_stream_matches_word_boundaries() {
        // Hashing via write() must consume full words and the remainder.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        h.write(&[9]);
        // Not required to be equal (chunk boundaries differ) but both must be
        // deterministic and non-zero.
        let b = h.finish();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
    }

    #[test]
    fn fxhashmap_works_as_a_map() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&21], 42);
    }
}
