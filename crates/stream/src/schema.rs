//! Stream schemas, identifiers and attribute domains.
//!
//! A schema declares, per stream, the attributes a tuple carries and the
//! discrete domain each attribute draws from. Domains matter twice: the
//! synthetic generators sample from them, and the bit-address index's
//! key map (§III of the paper: "we assume that the range and estimated
//! distribution of each attribute is known") uses them to spread values
//! evenly across bit prefixes.

use crate::error::StreamError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a stream within a query (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StreamId(pub u16);

/// Identifies an attribute within one stream's schema (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AttrId(pub u8);

impl StreamId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The discrete value domain of one attribute: `[min, max]` inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrDomain {
    /// Smallest value the attribute takes.
    pub min: u64,
    /// Largest value the attribute takes (inclusive).
    pub max: u64,
}

impl AttrDomain {
    /// A domain spanning `[0, cardinality)`.
    ///
    /// # Panics
    /// Panics if `cardinality == 0`.
    pub fn with_cardinality(cardinality: u64) -> Self {
        assert!(cardinality > 0, "domain cardinality must be positive");
        AttrDomain {
            min: 0,
            max: cardinality - 1,
        }
    }

    /// Number of distinct values in the domain.
    #[inline]
    pub fn cardinality(&self) -> u64 {
        self.max - self.min + 1
    }

    /// True iff `v` lies inside the domain.
    #[inline]
    pub fn contains(&self, v: u64) -> bool {
        v >= self.min && v <= self.max
    }
}

impl Default for AttrDomain {
    fn default() -> Self {
        AttrDomain {
            min: 0,
            max: u64::MAX,
        }
    }
}

/// Declaration of one attribute of a stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrSpec {
    /// Human-readable name (e.g. `"priority_code"`).
    pub name: String,
    /// Value domain.
    pub domain: AttrDomain,
}

impl AttrSpec {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, domain: AttrDomain) -> Self {
        AttrSpec {
            name: name.into(),
            domain,
        }
    }
}

/// Schema of one stream: its name and ordered attribute declarations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamSchema {
    /// Stream name (e.g. `"StreamA"`).
    pub name: String,
    /// Ordered attribute declarations; a tuple's `AttrVec` aligns with this.
    pub attrs: Vec<AttrSpec>,
    /// Extra non-join payload bytes carried per tuple (accounted by the
    /// memory model; never materialized).
    pub payload_bytes: u32,
}

impl StreamSchema {
    /// Build a schema.
    pub fn new(name: impl Into<String>, attrs: Vec<AttrSpec>, payload_bytes: u32) -> Self {
        StreamSchema {
            name: name.into(),
            attrs,
            payload_bytes,
        }
    }

    /// Number of declared attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Look up an attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u8))
    }

    /// The spec for attribute `a`.
    ///
    /// # Errors
    /// [`StreamError::UnknownAttribute`] if out of range (stream id reported
    /// as `u16::MAX` because the schema does not know its own id).
    pub fn attr(&self, a: AttrId) -> Result<&AttrSpec, StreamError> {
        self.attrs
            .get(a.idx())
            .ok_or(StreamError::UnknownAttribute {
                stream: u16::MAX,
                attr: a.0,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamSchema {
        StreamSchema::new(
            "Packages",
            vec![
                AttrSpec::new("priority_code", AttrDomain::with_cardinality(32)),
                AttrSpec::new("package_id", AttrDomain::with_cardinality(100_000)),
                AttrSpec::new("location_id", AttrDomain::with_cardinality(512)),
            ],
            100,
        )
    }

    #[test]
    fn domain_cardinality_and_membership() {
        let d = AttrDomain::with_cardinality(10);
        assert_eq!(d.cardinality(), 10);
        assert!(d.contains(0));
        assert!(d.contains(9));
        assert!(!d.contains(10));
        let full = AttrDomain::default();
        assert!(full.contains(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "cardinality must be positive")]
    fn zero_cardinality_panics() {
        let _ = AttrDomain::with_cardinality(0);
    }

    #[test]
    fn schema_lookup_by_name_and_id() {
        let s = sample();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_by_name("location_id"), Some(AttrId(2)));
        assert_eq!(s.attr_by_name("missing"), None);
        assert_eq!(s.attr(AttrId(0)).unwrap().name, "priority_code");
        assert!(s.attr(AttrId(3)).is_err());
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(StreamId(2).to_string(), "S2");
        assert_eq!(AttrId(1).to_string(), "a1");
        assert_eq!(StreamId(2).idx(), 2);
        assert_eq!(AttrId(1).idx(), 1);
    }

    #[test]
    fn schema_clones_and_compares() {
        let s = sample();
        let t = s.clone();
        assert_eq!(s, t);
        let mut u = s.clone();
        u.payload_bytes = 1;
        assert_ne!(s, u);
    }
}
