//! Stream tuples and partial (intermediate) join tuples.
//!
//! The router moves two kinds of objects: base tuples freshly arrived from a
//! stream, and *partial tuples* — concatenations of base tuples from several
//! streams produced by intermediate joins. Which streams a partial tuple
//! already covers determines the access pattern of its next probe (§I of the
//! paper: a tuple routed `A⋈B` first probes `C` with *both* join attributes;
//! one routed directly probes with one) — this coupling between routing and
//! access patterns is the entire motivation for AMRI.

use crate::schema::StreamId;
use crate::time::VirtualTime;
use crate::value::AttrVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of streams a single query may join.
///
/// The paper's evaluation uses 4-way joins; 6 gives headroom for extension
/// experiments while keeping [`PartialTuple`] a fixed-size value type.
pub const MAX_STREAMS: usize = 6;

/// Unique identifier of a base tuple within one run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TupleId(pub u64);

/// A base tuple arriving on a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuple {
    /// Run-unique id.
    pub id: TupleId,
    /// Originating stream.
    pub stream: StreamId,
    /// Arrival instant (drives sliding-window expiration).
    pub ts: VirtualTime,
    /// Attribute values, aligned with the stream's schema.
    pub attrs: AttrVec,
}

impl Tuple {
    /// Construct a tuple.
    pub fn new(id: TupleId, stream: StreamId, ts: VirtualTime, attrs: AttrVec) -> Self {
        Tuple {
            id,
            stream,
            ts,
            attrs,
        }
    }
}

/// Bitmask of streams covered by a partial tuple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct StreamMask(pub u16);

impl StreamMask {
    /// The empty mask.
    pub const EMPTY: StreamMask = StreamMask(0);

    /// Mask covering only `s`.
    #[inline]
    pub fn only(s: StreamId) -> Self {
        StreamMask(1 << s.0)
    }

    /// Mask covering all of the first `n` streams.
    ///
    /// # Panics
    /// Panics if `n > MAX_STREAMS`.
    #[inline]
    pub fn all(n: usize) -> Self {
        assert!(n <= MAX_STREAMS);
        StreamMask(((1u32 << n) - 1) as u16)
    }

    /// True iff `s` is covered.
    #[inline]
    pub fn covers(self, s: StreamId) -> bool {
        self.0 & (1 << s.0) != 0
    }

    /// Union with another mask.
    #[inline]
    pub fn union(self, other: StreamMask) -> StreamMask {
        StreamMask(self.0 | other.0)
    }

    /// Add one stream.
    #[inline]
    pub fn with(self, s: StreamId) -> StreamMask {
        StreamMask(self.0 | (1 << s.0))
    }

    /// Number of covered streams.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True iff nothing is covered.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterator over covered stream ids, ascending.
    pub fn streams(self) -> impl Iterator<Item = StreamId> {
        let mut m = self.0;
        std::iter::from_fn(move || {
            if m == 0 {
                None
            } else {
                let b = m.trailing_zeros() as u16;
                m &= m - 1;
                Some(StreamId(b))
            }
        })
    }
}

impl fmt::Debug for StreamMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for s in self.streams() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// A (possibly partial) join result flowing through the router.
///
/// Holds, per covered stream, the base tuple's attribute values; a partial
/// tuple covering all query streams is a final join result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialTuple {
    /// Which streams' tuples this partial result already contains.
    pub covered: StreamMask,
    /// Earliest arrival instant among the constituent base tuples — used for
    /// window checks when probing further states.
    pub min_ts: VirtualTime,
    /// Per-stream attribute values; slot `i` is valid iff `covered` has
    /// stream `i`.
    parts: [AttrVec; MAX_STREAMS],
}

impl PartialTuple {
    /// Wrap a single base tuple.
    ///
    /// # Panics
    /// Panics if the tuple's stream id is ≥ [`MAX_STREAMS`].
    pub fn from_base(t: &Tuple) -> Self {
        assert!((t.stream.idx()) < MAX_STREAMS, "stream id out of range");
        let mut parts = [AttrVec::new(); MAX_STREAMS];
        parts[t.stream.idx()] = t.attrs;
        PartialTuple {
            covered: StreamMask::only(t.stream),
            min_ts: t.ts,
            parts,
        }
    }

    /// Attribute values of the covered stream `s`, or `None` if `s` is not
    /// covered.
    #[inline]
    pub fn part(&self, s: StreamId) -> Option<&AttrVec> {
        if self.covered.covers(s) {
            Some(&self.parts[s.idx()])
        } else {
            None
        }
    }

    /// Join this partial tuple with a base tuple's attributes from stream
    /// `s` (predicate satisfaction is the caller's responsibility).
    ///
    /// # Panics
    /// Panics if `s` is already covered.
    pub fn extend(&self, s: StreamId, attrs: AttrVec, ts: VirtualTime) -> PartialTuple {
        assert!(!self.covered.covers(s), "stream {s} already joined");
        let mut out = *self;
        out.covered = out.covered.with(s);
        out.parts[s.idx()] = attrs;
        if ts < out.min_ts {
            out.min_ts = ts;
        }
        out
    }

    /// True iff this partial tuple covers every stream of an `n`-way query
    /// (i.e. it is a final join result).
    #[inline]
    pub fn is_complete(&self, n_streams: usize) -> bool {
        self.covered == StreamMask::all(n_streams)
    }

    /// Rebuild a partial tuple from its covered parts (checkpoint
    /// restore). `parts` supplies the attribute values for `covered`'s
    /// streams in ascending stream order; uncovered slots are zeroed
    /// exactly as [`from_base`](Self::from_base)/[`extend`](Self::extend)
    /// leave them, so the restored value is `==` the captured one.
    ///
    /// # Panics
    /// Panics if `parts` does not supply exactly one entry per covered
    /// stream.
    pub fn from_parts(
        covered: StreamMask,
        min_ts: VirtualTime,
        parts: impl IntoIterator<Item = AttrVec>,
    ) -> Self {
        let mut slots = [AttrVec::new(); MAX_STREAMS];
        let mut streams = covered.streams();
        let mut n = 0u32;
        for attrs in parts {
            let s = streams.next().expect("more parts than covered streams");
            slots[s.idx()] = attrs;
            n += 1;
        }
        assert_eq!(n, covered.count(), "fewer parts than covered streams");
        PartialTuple {
            covered,
            min_ts,
            parts: slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrVec;

    fn t(stream: u16, attrs: &[u64], secs: u64) -> Tuple {
        Tuple::new(
            TupleId(stream as u64 * 1000),
            StreamId(stream),
            VirtualTime::from_secs(secs),
            AttrVec::from_slice(attrs).unwrap(),
        )
    }

    #[test]
    fn mask_operations() {
        let m = StreamMask::only(StreamId(1)).with(StreamId(3));
        assert!(m.covers(StreamId(1)));
        assert!(m.covers(StreamId(3)));
        assert!(!m.covers(StreamId(0)));
        assert_eq!(m.count(), 2);
        assert_eq!(
            m.streams().collect::<Vec<_>>(),
            vec![StreamId(1), StreamId(3)]
        );
        assert_eq!(m.union(StreamMask::only(StreamId(0))).count(), 3);
        assert_eq!(StreamMask::all(4).count(), 4);
        assert!(StreamMask::EMPTY.is_empty());
        assert_eq!(format!("{m:?}"), "{S1,S3}");
    }

    #[test]
    fn base_tuple_wraps_into_partial() {
        let base = t(2, &[10, 20, 30], 5);
        let p = PartialTuple::from_base(&base);
        assert_eq!(p.covered, StreamMask::only(StreamId(2)));
        assert_eq!(p.min_ts, VirtualTime::from_secs(5));
        assert_eq!(p.part(StreamId(2)).unwrap().as_slice(), &[10, 20, 30]);
        assert!(p.part(StreamId(0)).is_none());
        assert!(!p.is_complete(4));
    }

    #[test]
    fn extend_joins_streams_and_tracks_min_ts() {
        let p = PartialTuple::from_base(&t(0, &[1, 2, 3], 10));
        let q = p.extend(
            StreamId(1),
            AttrVec::from_slice(&[4, 5, 6]).unwrap(),
            VirtualTime::from_secs(3),
        );
        assert_eq!(q.covered.count(), 2);
        assert_eq!(q.min_ts, VirtualTime::from_secs(3)); // earlier constituent
        assert_eq!(q.part(StreamId(0)).unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(q.part(StreamId(1)).unwrap().as_slice(), &[4, 5, 6]);
        // Original untouched (value semantics).
        assert_eq!(p.covered.count(), 1);

        let r = q
            .extend(
                StreamId(2),
                AttrVec::from_slice(&[7]).unwrap(),
                VirtualTime::from_secs(20),
            )
            .extend(
                StreamId(3),
                AttrVec::from_slice(&[8]).unwrap(),
                VirtualTime::from_secs(20),
            );
        assert!(r.is_complete(4));
        assert_eq!(r.min_ts, VirtualTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "already joined")]
    fn extending_with_covered_stream_panics() {
        let p = PartialTuple::from_base(&t(0, &[1], 0));
        let _ = p.extend(StreamId(0), AttrVec::new(), VirtualTime::ZERO);
    }

    #[test]
    fn complete_requires_exact_prefix_mask() {
        let p = PartialTuple::from_base(&t(0, &[1], 0)).extend(
            StreamId(2),
            AttrVec::new(),
            VirtualTime::ZERO,
        );
        // Covers {0,2} — not complete for a 3-way query over {0,1,2}.
        assert!(!p.is_complete(3));
    }
}
