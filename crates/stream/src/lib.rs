//! # amri-stream — stream substrate for AMRI
//!
//! Foundation types for the AMRI reproduction (Works, Rundensteiner, Agu:
//! *Index Tuning for Adaptive Multi-Route Data Stream Systems*, IPPS 2010):
//!
//! * [`value`] — attribute values and the inline attribute vector used by
//!   tuples and search requests.
//! * [`time`] — the deterministic virtual clock the whole simulation runs
//!   on, and the [`Clock`] abstraction the runtime layer is written against.
//! * [`batch`] — batch-granular job flow: the [`JobQueue`] backlog that
//!   moves routing jobs between operators in [`Batch`]es while preserving
//!   exact FIFO order.
//! * [`schema`] — stream schemas, attribute domains, identifiers.
//! * [`mod@tuple`] — stream tuples and partial (intermediate) join tuples.
//! * [`window`] — sliding-window bookkeeping (expiration queues).
//! * [`query`] — SPJ query model: join predicates, join attribute sets (JAS).
//! * [`pattern`] — access patterns, the `BR(ap)` binary representation and
//!   the search-benefit (subset) relation that organizes them into a lattice.
//! * [`fxhash`] — a fast, deterministic non-cryptographic hasher (the
//!   rustc-hash algorithm) used in all hot paths instead of SipHash.
//!
//! Everything is deterministic: no wall-clock reads, no unseeded randomness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod error;
pub mod fxhash;
pub mod pattern;
pub mod query;
pub mod schema;
pub mod snapshot;
pub mod time;
pub mod tuple;
pub mod value;
pub mod window;

pub use batch::{Batch, JobQueue, DEFAULT_BATCH_CAPACITY, DEFAULT_MAX_SPARE_BUFFERS};
pub use error::StreamError;
pub use fxhash::{fx_hash_u64, FxBuildHasher, FxHashMap, FxHashSet};
pub use pattern::{AccessPattern, SearchRequest};
pub use query::{JoinGraph, JoinOp, JoinPredicate, Selection, SpjQuery};
pub use schema::{AttrDomain, AttrId, AttrSpec, StreamId, StreamSchema};
pub use snapshot::{
    open_block, seal_block, SectionReader, SectionWriter, SnapshotError, SnapshotReader,
    SnapshotWriter, SNAPSHOT_VERSION,
};
pub use time::{Clock, VirtualClock, VirtualDuration, VirtualTime, TICKS_PER_SEC};
pub use tuple::{PartialTuple, StreamMask, Tuple, TupleId};
pub use value::{AttrValue, AttrVec, MAX_ATTRS};
pub use window::{WindowBuffer, WindowSpec};

/// Convenience prelude bringing the commonly used substrate types in scope.
pub mod prelude {
    pub use crate::batch::{Batch, JobQueue};
    pub use crate::error::StreamError;
    pub use crate::fxhash::{FxHashMap, FxHashSet};
    pub use crate::pattern::{AccessPattern, SearchRequest};
    pub use crate::query::{JoinGraph, JoinOp, JoinPredicate, Selection, SpjQuery};
    pub use crate::schema::{AttrDomain, AttrId, AttrSpec, StreamId, StreamSchema};
    pub use crate::time::{Clock, VirtualClock, VirtualDuration, VirtualTime};
    pub use crate::tuple::{PartialTuple, StreamMask, Tuple, TupleId};
    pub use crate::value::{AttrValue, AttrVec};
    pub use crate::window::{WindowBuffer, WindowSpec};
}
