//! Attribute values and the inline attribute vector.
//!
//! Join attributes in the paper's workloads are discrete identifiers
//! (priority codes, package ids, location ids, ticker ids...). We model every
//! attribute value as a `u64`; equality joins compare these directly and the
//! bit-address index hashes them. Payload bytes that ride along with a tuple
//! are accounted for by the memory model but never materialized.
//!
//! [`AttrVec`] is a fixed-capacity inline vector (no heap allocation per
//! tuple) — the hot paths create millions of these.

use crate::error::StreamError;
use std::fmt;
use std::ops::{Deref, Index};

/// A single attribute value. Discrete domain, compared and hashed directly.
pub type AttrValue = u64;

/// Hard cap on attributes carried inline by a tuple or search request.
///
/// The paper's scenarios use 3 join attributes per state; 8 leaves room for
/// wider schemas (join + payload key attributes) while keeping `AttrVec`
/// register-friendly (72 bytes).
pub const MAX_ATTRS: usize = 8;

/// Fixed-capacity inline vector of attribute values.
///
/// Semantically a `Vec<AttrValue>` capped at [`MAX_ATTRS`]; physically a
/// `[u64; 8]` plus a length byte, so tuples never heap-allocate.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrVec {
    len: u8,
    vals: [AttrValue; MAX_ATTRS],
}

impl AttrVec {
    /// The empty vector.
    #[inline]
    pub fn new() -> Self {
        AttrVec {
            len: 0,
            vals: [0; MAX_ATTRS],
        }
    }

    /// Build from a slice.
    ///
    /// # Errors
    /// Returns [`StreamError::TooManyAttributes`] if the slice is longer than
    /// [`MAX_ATTRS`].
    pub fn from_slice(vals: &[AttrValue]) -> Result<Self, StreamError> {
        if vals.len() > MAX_ATTRS {
            return Err(StreamError::TooManyAttributes {
                requested: vals.len(),
                max: MAX_ATTRS,
            });
        }
        let mut v = AttrVec::new();
        v.vals[..vals.len()].copy_from_slice(vals);
        v.len = vals.len() as u8;
        Ok(v)
    }

    /// Number of attributes stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True iff no attributes are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a value.
    ///
    /// # Panics
    /// Panics if the vector is full ([`MAX_ATTRS`] values).
    #[inline]
    pub fn push(&mut self, v: AttrValue) {
        assert!(
            (self.len as usize) < MAX_ATTRS,
            "AttrVec overflow: capacity {MAX_ATTRS}"
        );
        self.vals[self.len as usize] = v;
        self.len += 1;
    }

    /// The stored values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[AttrValue] {
        &self.vals[..self.len as usize]
    }

    /// Value at position `i`, or `None` if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<AttrValue> {
        self.as_slice().get(i).copied()
    }

    /// Overwrite the value at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: AttrValue) {
        assert!(i < self.len as usize, "AttrVec index {i} out of range");
        self.vals[i] = v;
    }
}

impl Default for AttrVec {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for AttrVec {
    type Target = [AttrValue];
    #[inline]
    fn deref(&self) -> &[AttrValue] {
        self.as_slice()
    }
}

impl Index<usize> for AttrVec {
    type Output = AttrValue;
    #[inline]
    fn index(&self, i: usize) -> &AttrValue {
        &self.as_slice()[i]
    }
}

impl fmt::Debug for AttrVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl FromIterator<AttrValue> for AttrVec {
    /// Collect up to [`MAX_ATTRS`] values.
    ///
    /// # Panics
    /// Panics if the iterator yields more than [`MAX_ATTRS`] values.
    fn from_iter<I: IntoIterator<Item = AttrValue>>(iter: I) -> Self {
        let mut v = AttrVec::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<'a> IntoIterator for &'a AttrVec {
    type Item = &'a AttrValue;
    type IntoIter = std::slice::Iter<'a, AttrValue>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut v = AttrVec::new();
        assert!(v.is_empty());
        v.push(10);
        v.push(20);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 10);
        assert_eq!(v.get(1), Some(20));
        assert_eq!(v.get(2), None);
        assert_eq!(v.as_slice(), &[10, 20]);
    }

    #[test]
    fn from_slice_and_overflow() {
        let v = AttrVec::from_slice(&[1, 2, 3]).unwrap();
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        let too_many = [0u64; MAX_ATTRS + 1];
        assert!(matches!(
            AttrVec::from_slice(&too_many),
            Err(StreamError::TooManyAttributes {
                requested: 9,
                max: 8
            })
        ));
    }

    #[test]
    #[should_panic(expected = "AttrVec overflow")]
    fn push_past_capacity_panics() {
        let mut v = AttrVec::from_slice(&[0; MAX_ATTRS]).unwrap();
        v.push(1);
    }

    #[test]
    fn set_replaces_in_place() {
        let mut v = AttrVec::from_slice(&[1, 2]).unwrap();
        v.set(1, 99);
        assert_eq!(v.as_slice(), &[1, 99]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut v = AttrVec::from_slice(&[1]).unwrap();
        v.set(1, 0);
    }

    #[test]
    fn equality_ignores_unused_slots() {
        let mut a = AttrVec::new();
        a.push(5);
        let b = AttrVec::from_slice(&[5]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn collects_from_iterator() {
        let v: AttrVec = (0..4u64).collect();
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        let total: u64 = (&v).into_iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let v = AttrVec::from_slice(&[3, 1, 2]).unwrap();
        assert_eq!(v.iter().max(), Some(&3));
        assert!(v.contains(&1));
    }

    #[test]
    fn size_is_compact() {
        // 8 values + len, padded: must stay ≤ 80 bytes so tuples stay small.
        assert!(std::mem::size_of::<AttrVec>() <= 80);
    }
}
