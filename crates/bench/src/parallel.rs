//! Scoped-thread fan-out over independent engine runs.
//!
//! Each experiment lineup (five assessment methods, seven hash widths) is
//! a set of completely independent simulations — ideal data parallelism.
//! `run_all` executes the provided closures on scoped crossbeam threads
//! and returns their results in input order.

use crossbeam::thread;

/// Run every job on its own scoped thread, preserving order.
///
/// # Panics
/// Propagates the first panicking job's panic.
pub fn run_all<T: Send, F>(jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
{
    thread::scope(|s| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| s.spawn(move |_| job()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment job panicked"))
            .collect()
    })
    .expect("scope join")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_runs_everything() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_all(jobs);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn actually_parallel() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                || {
                    let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(50));
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_all(jobs);
        assert!(
            PEAK.load(Ordering::SeqCst) >= 2,
            "jobs must overlap in time"
        );
    }
}
