//! Bounded worker-pool fan-out over independent engine runs.
//!
//! Each experiment lineup (five assessment methods, seven hash widths,
//! the nine-flavor survival sweep) is a set of completely independent
//! simulations — ideal data parallelism. Earlier revisions spawned one
//! thread per job, which oversubscribes the machine as soon as a lineup
//! exceeds the core count (stacked lineups ran 16+ simulations at once);
//! `run_all` now drains the jobs through a fixed pool of scoped workers
//! capped at [`max_workers`], preserving input order and panic
//! propagation.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Worker cap for [`run_all`]: `std::thread::available_parallelism()`,
/// falling back to 1 when the platform cannot report it.
pub fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run every job on a fixed pool of at most [`max_workers`] scoped
/// threads, returning results in input order.
///
/// Jobs are pulled from a shared queue, so long-running simulations don't
/// leave workers idle behind a static partition. Never spawns more
/// threads than jobs.
///
/// # Panics
/// Propagates the panic of the lowest-indexed panicking job (after all
/// workers have drained, so no result is silently dropped).
pub fn run_all<T: Send, F>(jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = max_workers().min(n);
    if n == 0 {
        return Vec::new();
    }

    // Shared work queue of (input index, job); each worker owns a slot
    // per finished job in `slots[i]`.
    let queue: Mutex<VecDeque<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let Some((i, job)) = queue.lock().expect("job queue poisoned").pop_front() else {
                    break;
                };
                let outcome = catch_unwind(AssertUnwindSafe(job));
                *slots[i].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(value)) => out.push(value),
            Some(Err(panic)) => resume_unwind(panic),
            None => unreachable!("worker exited without completing its job"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn preserves_order_and_runs_everything() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_all(jobs);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn preserves_order_beyond_the_worker_cap() {
        // Many more jobs than cores, with reversed sleep times so late
        // jobs finish first: order must still follow the input.
        let n = 4 * max_workers() + 3;
        let jobs: Vec<_> = (0..n)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_micros(((n - i) * 50) as u64));
                    i
                }
            })
            .collect();
        let out = run_all(jobs);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let jobs: Vec<fn() -> u32> = Vec::new();
        assert_eq!(run_all(jobs), Vec::<u32>::new());
    }

    #[test]
    fn actually_parallel() {
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..2.min(max_workers()))
            .map(|_| {
                || {
                    let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(50));
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_all(jobs);
        let want = 2.min(max_workers());
        assert!(
            PEAK.load(Ordering::SeqCst) >= want,
            "jobs must overlap in time"
        );
    }

    #[test]
    fn never_exceeds_available_parallelism() {
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        PEAK.store(0, Ordering::SeqCst);
        // 3x oversubscription: concurrency must still be capped.
        let jobs: Vec<_> = (0..3 * max_workers())
            .map(|_| {
                || {
                    let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(10));
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_all(jobs);
        assert!(
            PEAK.load(Ordering::SeqCst) <= max_workers(),
            "peak {} exceeded the {}-worker cap",
            PEAK.load(Ordering::SeqCst),
            max_workers()
        );
    }

    #[test]
    fn propagates_the_lowest_indexed_panic() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("first failure")),
            Box::new(|| 3),
            Box::new(|| panic!("second failure")),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| run_all(jobs)))
            .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| err.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert_eq!(msg, "first failure");
    }
}
