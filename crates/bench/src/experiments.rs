//! One runner per §V experiment.
//!
//! Each function builds the paper scenario, performs the quasi-training
//! bootstrap, fans the lineup out over scoped threads and returns aligned
//! [`RunResult`]s. The binaries in `src/bin` print them; the integration
//! tests assert the paper's qualitative shape (who wins, who dies, in what
//! order).

use crate::parallel::run_all;
use crate::training::{train_initial, TrainedInit};
use amri_core::assess::AssessorKind;
use amri_core::{IndexConfig, TunerKind};
use amri_engine::{Executor, IndexingMode, MaintenanceStats, RunResult};
use amri_hh::CombineStrategy;
use amri_stream::AccessPattern;
use amri_synth::scenario::{adversarial_scenario, paper_scenario, Scale};
use amri_synth::PaperScenario;
use std::num::NonZeroUsize;

/// Virtual seconds of quasi-training per scale (the paper used 15 min; the
/// quick scale shrinks proportionally).
fn train_secs(scale: Scale) -> u64 {
    match scale {
        Scale::Paper => 120,
        Scale::Quick => 20,
    }
}

/// Build scenario + training for a seed, pointed at `threads` workers
/// (one thread — the default everywhere — is the exact sequential path).
fn prepared(scale: Scale, seed: u64, threads: NonZeroUsize) -> (PaperScenario, TrainedInit) {
    let mut scenario = paper_scenario(scale, seed);
    crate::cli::apply_threads(&mut scenario.engine, threads);
    let init = train_initial(&scenario, train_secs(scale));
    (scenario, init)
}

fn run_mode_with_stats(
    scenario: &PaperScenario,
    mode: IndexingMode,
) -> (RunResult, MaintenanceStats) {
    Executor::try_new(
        &scenario.query,
        scenario.workload(),
        mode,
        scenario.engine.clone(),
    )
    .expect("valid engine configuration")
    .run_with_stats()
}

/// `EXP-F6-ASSESS` — Figure 6, assessment methods: AMRI under SRIA, CSRIA,
/// DIA, CDIA-random and CDIA-highest, identical workload and training.
///
/// This experiment runs the engine *saturated* (higher `λ_d`, fast drift,
/// generous memory): every variant is CPU-bound, so cumulative throughput
/// directly reflects how good the selected index configurations are — the
/// regime in which the paper's Figure 6 separates the methods. (At an
/// unsaturated operating point all five variants would tie: an engine with
/// headroom produces exactly the workload's join results regardless of
/// index quality.)
pub fn fig6_assessment(scale: Scale, seed: u64, threads: NonZeroUsize) -> Vec<RunResult> {
    fig6_assessment_with_stats(scale, seed, threads)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// [`fig6_assessment`] plus per-run [`MaintenanceStats`] — the deterministic
/// virtual ticks each variant spent on ingest and migration.
pub fn fig6_assessment_with_stats(
    scale: Scale,
    seed: u64,
    threads: NonZeroUsize,
) -> Vec<(RunResult, MaintenanceStats)> {
    let (scenario, init) = match scale {
        Scale::Paper => {
            let mut sc = paper_scenario(scale, seed);
            crate::cli::apply_threads(&mut sc.engine, threads);
            sc.schedule = amri_synth::DriftSchedule::rotating(
                4,
                amri_stream::VirtualDuration::from_secs(100),
                24,
                12,
            );
            sc.engine.lambda_d = 230.0;
            sc.engine.lambda_ramp = 0.0;
            sc.engine.budget = amri_engine::MemoryBudget::mib(512);
            // Eight saturated minutes at a fixed rate separate the methods
            // cleanly; a longer horizon (or the ramp) only adds wall-clock
            // cost without changing the ordering.
            sc.engine.duration = amri_stream::VirtualDuration::from_mins(8);
            let init = train_initial(&sc, train_secs(scale));
            (sc, init)
        }
        Scale::Quick => prepared(scale, seed, threads),
    };
    let jobs: Vec<_> = AssessorKind::figure6_lineup()
        .into_iter()
        .map(|kind| {
            let scenario = &scenario;
            let configs: Vec<IndexConfig> = init.configs.clone();
            move || {
                run_mode_with_stats(
                    scenario,
                    IndexingMode::Amri {
                        assessor: kind,
                        initial: Some(configs),
                    },
                )
            }
        })
        .collect();
    run_all(jobs)
}

/// `EXP-F6-HASH` — Figure 6, state-of-the-art AMR indexing: access modules
/// with 1..=7 hash indices (CDIA-highest statistics, conventional
/// selection), trained starting patterns.
pub fn fig6_hash(scale: Scale, seed: u64, threads: NonZeroUsize) -> Vec<RunResult> {
    fig6_hash_with_stats(scale, seed, threads)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// [`fig6_hash`] plus per-run [`MaintenanceStats`].
pub fn fig6_hash_with_stats(
    scale: Scale,
    seed: u64,
    threads: NonZeroUsize,
) -> Vec<(RunResult, MaintenanceStats)> {
    let (scenario, init) = prepared(scale, seed, threads);
    let jobs: Vec<_> = (1..=7usize)
        .map(|k| {
            let scenario = &scenario;
            let patterns: Vec<Vec<AccessPattern>> = init.hash_patterns(k);
            move || {
                run_mode_with_stats(
                    scenario,
                    IndexingMode::AdaptiveHash {
                        n_indices: k,
                        initial: Some(patterns),
                    },
                )
            }
        })
        .collect();
    run_all(jobs)
}

/// The Figure 7 bundle: AMRI vs the best hash configuration vs the
/// non-adapting bitmap index.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// AMRI with CDIA-highest (the paper's configuration for Figure 7).
    pub amri: RunResult,
    /// The best of the seven hash runs (by cumulative outputs).
    pub best_hash: RunResult,
    /// The non-adapting bitmap starting from the same trained optimum.
    pub bitmap: RunResult,
    /// Maintenance ticks for `[amri, best_hash, bitmap]`, in that order —
    /// aligned with the run fields so callers can feed both straight into
    /// the summary CSV.
    pub maint: [MaintenanceStats; 3],
}

impl Fig7Result {
    /// Paper headline: AMRI produced 93% more results than the best hash
    /// configuration. Returns `amri/best_hash - 1`.
    pub fn gain_over_hash(&self) -> f64 {
        self.amri.outputs as f64 / self.best_hash.outputs.max(1) as f64 - 1.0
    }

    /// Paper headline: AMRI produced 75% more results than the non-adapting
    /// bitmap. Returns `amri/bitmap - 1`.
    pub fn gain_over_bitmap(&self) -> f64 {
        self.amri.outputs as f64 / self.bitmap.outputs.max(1) as f64 - 1.0
    }
}

/// `EXP-F7-AMRI-VS-HASH` / `EXP-F7-AMRI-VS-BITMAP` — Figure 7.
pub fn fig7_compare(scale: Scale, seed: u64, threads: NonZeroUsize) -> Fig7Result {
    let (scenario, init) = prepared(scale, seed, threads);
    let hash_runs = {
        let jobs: Vec<_> = (1..=7usize)
            .map(|k| {
                let scenario = &scenario;
                let patterns = init.hash_patterns(k);
                move || {
                    run_mode_with_stats(
                        scenario,
                        IndexingMode::AdaptiveHash {
                            n_indices: k,
                            initial: Some(patterns),
                        },
                    )
                }
            })
            .collect();
        run_all(jobs)
    };
    let mut pair = {
        let configs = init.configs.clone();
        let configs2 = init.configs.clone();
        let scenario_ref = &scenario;
        let jobs: Vec<Box<dyn FnOnce() -> (RunResult, MaintenanceStats) + Send>> = vec![
            Box::new(move || {
                run_mode_with_stats(
                    scenario_ref,
                    IndexingMode::Amri {
                        assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
                        initial: Some(configs),
                    },
                )
            }),
            Box::new(move || {
                run_mode_with_stats(
                    scenario_ref,
                    IndexingMode::StaticBitmap {
                        configs: Some(configs2),
                    },
                )
            }),
        ];
        run_all(jobs)
    };
    let (bitmap, bitmap_maint) = pair.pop().expect("two jobs");
    let (amri, amri_maint) = pair.pop().expect("two jobs");
    let (best_hash, best_hash_maint) = hash_runs
        .into_iter()
        .max_by_key(|(r, _)| r.outputs)
        .expect("seven hash runs");
    Fig7Result {
        amri,
        best_hash,
        bitmap,
        maint: [amri_maint, best_hash_maint, bitmap_maint],
    }
}

/// One cell of the tuner duel: a tuning policy on a drift schedule.
#[derive(Debug)]
pub struct DuelCell {
    /// Which drift schedule the cell ran under (`paper` / `adversarial`).
    pub drift: &'static str,
    /// The tuning policy under test.
    pub tuner: TunerKind,
    /// The run itself, relabeled `<drift>/<tuner>`.
    pub run: RunResult,
    /// Maintenance ticks including the tuner-ledger trio.
    pub maint: MaintenanceStats,
}

/// `EXP-DUEL` — the safe-tuning head-to-head: the paper's greedy tuner,
/// the bandit tuner and the static-IC oracle, each on (a) the paper's
/// rotating drift and (b) the adversarial A/B flip whose phase length
/// undercuts the migration-amortization horizon
/// ([`adversarial_scenario`]). All six cells share the query, the
/// quasi-trained starting configurations and the seed, so the only degree
/// of freedom is the tuning policy — the regret/thrash columns in the
/// returned [`MaintenanceStats`] are directly comparable.
pub fn tuner_duel(scale: Scale, seed: u64, threads: NonZeroUsize) -> Vec<DuelCell> {
    let scenarios: Vec<(&'static str, PaperScenario, TrainedInit)> =
        [("paper", false), ("adversarial", true)]
            .into_iter()
            .map(|(drift, adversarial)| {
                let mut sc = if adversarial {
                    adversarial_scenario(scale, seed)
                } else {
                    paper_scenario(scale, seed)
                };
                crate::cli::apply_threads(&mut sc.engine, threads);
                let init = train_initial(&sc, train_secs(scale));
                (drift, sc, init)
            })
            .collect();
    let tuners = [TunerKind::Paper, TunerKind::Bandit, TunerKind::Static];
    let jobs: Vec<_> = scenarios
        .iter()
        .flat_map(|(drift, sc, init)| {
            tuners.into_iter().map(move |tuner| {
                let configs = init.configs.clone();
                move || {
                    let mut sc = sc.clone();
                    sc.engine.tuner_kind = tuner;
                    let (mut run, maint) = run_mode_with_stats(
                        &sc,
                        IndexingMode::Amri {
                            assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
                            initial: Some(configs),
                        },
                    );
                    run.label = format!("{drift}/{}", tuner.label());
                    DuelCell {
                        drift,
                        tuner,
                        run,
                        maint,
                    }
                }
            })
        })
        .collect();
    run_all(jobs)
}

/// The Table II worked-example reproduction.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Patterns CSRIA reports at θ=5% (the paper: the five ≥5% patterns;
    /// `<A,*,*>` and `<A,B,*>` deleted).
    pub csria_frequent: Vec<(AccessPattern, f64)>,
    /// Patterns CDIA-random reports (the A family folded and recovered).
    pub cdia_frequent: Vec<(AccessPattern, f64)>,
    /// 4-bit configuration selected from CSRIA's statistics.
    pub csria_config: IndexConfig,
    /// 4-bit configuration selected from CDIA's statistics.
    pub cdia_config: IndexConfig,
    /// The paper's "true optimal IC" benchmark, selected from the exact
    /// rolled-up statistics.
    pub optimal_config: IndexConfig,
}

/// `EXP-T2-EXAMPLE` — the §IV-C2/§IV-D2 worked example on the Table II
/// distribution: CSRIA deletes the A-family statistics and misconfigures;
/// CDIA (random combination) folds them and recovers the optimum.
pub fn table2_example() -> Table2Result {
    use amri_core::assess::{feed_table_ii, Assessor, Csria};
    use amri_core::{ApStat, CostParams, WorkloadProfile};

    let theta = 0.05;
    let epsilon = 0.001;
    let mut csria = Csria::new(3, epsilon);
    feed_table_ii(&mut csria);
    // Random combination, seed chosen so the documented fold (<A,B,*> into
    // <A,*,*>) happens — the paper's §IV-D2 narrative.
    let mut cdia = pick_recovering_cdia(epsilon, theta);
    feed_table_ii(&mut cdia);

    let params = CostParams::default();
    let profile = |aps: &[(AccessPattern, f64)]| {
        WorkloadProfile::new(
            1000.0,
            500.0,
            30.0,
            aps.iter()
                .map(|&(pattern, freq)| ApStat { pattern, freq })
                .collect(),
        )
    };
    let csria_frequent = csria.frequent(theta);
    let cdia_frequent = cdia.frequent(theta);
    let csria_config =
        amri_core::selection::select_config_exhaustive(4, 3, &profile(&csria_frequent), &params);
    let cdia_config =
        amri_core::selection::select_config_exhaustive(4, 3, &profile(&cdia_frequent), &params);
    // Exact rolled-up truth: the A family carries 8% on <A,*,*>.
    let ap = |m: u32| AccessPattern::new(m, 3);
    let exact = vec![
        (ap(0b001), 0.08),
        (ap(0b010), 0.10),
        (ap(0b100), 0.10),
        (ap(0b101), 0.16),
        (ap(0b110), 0.10),
        (ap(0b111), 0.46),
    ];
    let optimal_config =
        amri_core::selection::select_config_exhaustive(4, 3, &profile(&exact), &params);
    Table2Result {
        csria_frequent,
        cdia_frequent,
        csria_config,
        cdia_config,
        optimal_config,
    }
}

/// Find a random-combination CDIA whose coin flips reproduce the paper's
/// documented fold (deterministic: seeds are probed in order).
fn pick_recovering_cdia(epsilon: f64, theta: f64) -> amri_core::assess::Cdia {
    use amri_core::assess::{feed_table_ii, Assessor, Cdia};
    for seed in 0..64 {
        let mut c = Cdia::new(3, epsilon, CombineStrategy::Random, seed);
        feed_table_ii(&mut c);
        if c.frequent(theta).iter().any(|(p, _)| p.mask() == 0b001) {
            return Cdia::new(3, epsilon, CombineStrategy::Random, seed);
        }
    }
    panic!("no seed recovers the A family — CDIA folding is broken");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_the_worked_example() {
        let r = table2_example();
        // CSRIA keeps the five ≥5% patterns and loses the A family.
        let csria_masks: Vec<u32> = r.csria_frequent.iter().map(|(p, _)| p.mask()).collect();
        assert!(!csria_masks.contains(&0b001));
        assert!(!csria_masks.contains(&0b011));
        assert_eq!(csria_masks.len(), 5);
        // CDIA recovers <A,*,*> with the rolled-up 8%.
        let a = r
            .cdia_frequent
            .iter()
            .find(|(p, _)| p.mask() == 0b001)
            .expect("A family recovered");
        assert!((a.1 - 0.08).abs() < 0.01);
        // CSRIA's configuration leaves A unindexed; CDIA's indexes it, and
        // matches the configuration selected from the exact statistics.
        assert_eq!(r.csria_config.bits_of(0), 0, "{}", r.csria_config);
        assert!(r.cdia_config.bits_of(0) >= 1, "{}", r.cdia_config);
        assert_eq!(r.cdia_config, r.optimal_config);
    }
}
