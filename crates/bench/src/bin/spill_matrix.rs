//! Spill-tier acceptance matrix: every indexing mode is run three ways —
//! unconstrained, under an OOM-killing budget without a tier (must die),
//! and under the same budget *with* a disk spill tier (must complete with
//! the unconstrained outputs and output digest, since the identity
//! storage profile charges no virtual time). A crash-at-step run over
//! the spilled configuration must resume byte-identical, and a seeded
//! disk-fault storm (torn writes, read errors, latency spikes) must end
//! in recovery or a typed `Degraded` outcome — never a panic — and
//! replay bit-for-bit. Exits non-zero listing every violated cell.
//!
//! With `--spill-cache N` every mode gains a fourth cell: the same
//! spilled configuration with an N-byte decoded-block cache and
//! expiry-order readahead under the identity profile. That cell must
//! reproduce the cacheless spilled run byte-for-byte (its own cache
//! counters aside) — the determinism proof for the spill fast path.
//!
//! The matching summary CSVs are written under `--out` so
//! `scripts/ci.sh` can diff the spilled summary across thread counts
//! and the cached summary against the cacheless one.
//!
//! Usage: `spill_matrix [--quick] [--seed N] [--threads N] [--out DIR]
//!         [--spill-cache N]`

use amri_bench::{
    apply_threads, enforce_cli, parse_scale, parse_seed, parse_spill_cache, parse_threads,
    resume_latest, run_until_crash, write_summary_csv, FlagSpec, COMMON_FLAGS, SPILL_CACHE_FLAG,
};
use amri_core::assess::AssessorKind;
use amri_core::{IoFaultConfig, StorageProfile};
use amri_engine::{
    Executor, FaultKind, FaultPlan, IndexingMode, MemoryBudget, RunOutcome, SpillSettings,
};
use amri_synth::scenario::{paper_scenario, PaperScenario, Scale};
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::path::PathBuf;

const EXTRA_FLAGS: &[FlagSpec] = &[
    (
        "--out",
        true,
        "output directory (default results/spill_matrix)",
    ),
    SPILL_CACHE_FLAG,
];

fn parse_out(args: &[String]) -> PathBuf {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/spill_matrix"))
}

/// The §V lineup, one representative per flavor.
fn lineup() -> Vec<(&'static str, IndexingMode)> {
    vec![
        (
            "amri",
            IndexingMode::Amri {
                assessor: AssessorKind::Csria,
                initial: None,
            },
        ),
        (
            "hash-3",
            IndexingMode::AdaptiveHash {
                n_indices: 3,
                initial: None,
            },
        ),
        (
            "static-bitmap",
            IndexingMode::StaticBitmap { configs: None },
        ),
        ("scan", IndexingMode::Scan),
    ]
}

/// A budget below the mode's unconstrained peak (the all-RAM run must
/// die) but above its spill-resident floor (stubs and index links stay
/// in RAM; multi-hash keeps ~3 hash links per tuple resident).
fn forcing_budget(label: &str, peak: u64) -> u64 {
    match label {
        "hash-3" => peak * 9 / 10,
        _ => peak * 7 / 10,
    }
}

fn scenario(scale: Scale, seed: u64, threads: NonZeroUsize) -> PaperScenario {
    let mut sc = paper_scenario(scale, seed);
    sc.engine.duration = amri_stream::VirtualDuration::from_secs(8);
    sc.engine.budget = MemoryBudget::unlimited();
    apply_threads(&mut sc.engine, threads);
    sc
}

fn executor(sc: &PaperScenario, mode: IndexingMode) -> Executor<amri_synth::DriftingWorkload> {
    Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flags: Vec<FlagSpec> = COMMON_FLAGS
        .iter()
        .chain(EXTRA_FLAGS.iter())
        .copied()
        .collect();
    enforce_cli(&args, "spill_matrix", &flags);
    let scale = parse_scale(&args);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);
    let out = parse_out(&args);
    let cache_bytes = parse_spill_cache(&args);
    println!(
        "spill matrix (scale {scale:?}, seed {seed}, {threads} thread(s), \
         cache {cache_bytes} B)"
    );

    let mut violations: Vec<String> = Vec::new();
    let mut spilled_runs = Vec::new();
    let mut spilled_maints = Vec::new();
    let mut cached_runs = Vec::new();
    let mut cached_maints = Vec::new();
    let mut identity = String::from(
        "label,budget,outputs,output_digest,spilled_tuples,lost_blocks,oom_without_spill,\
         identical_outputs,crash_resume_identical,fault_outcome,fault_replay_identical,\
         cache_identical\n",
    );

    for (label, mode) in lineup() {
        let sc = scenario(scale, seed, threads);
        let (baseline, _) = executor(&sc, mode.clone()).run_with_stats();
        if baseline.outcome != RunOutcome::Completed {
            violations.push(format!(
                "{label}: unconstrained baseline must complete, got {:?}",
                baseline.outcome
            ));
            continue;
        }

        let budget = forcing_budget(label, baseline.series.peak_memory());
        let mut constrained = sc.clone();
        constrained.engine.budget = MemoryBudget { bytes: budget };
        let dead = executor(&constrained, mode.clone()).run();
        let oomed = matches!(dead.outcome, RunOutcome::OutOfMemory { .. });
        if !oomed {
            violations.push(format!(
                "{label}: the {budget}-byte budget must kill the all-RAM run, got {:?}",
                dead.outcome
            ));
        }

        let spill_dir = out.join("spill").join(label);
        std::fs::remove_dir_all(&spill_dir).ok();
        let mut spilled_sc = constrained.clone();
        spilled_sc.engine.spill = Some(SpillSettings::in_dir(&spill_dir));
        let (spilled, spilled_maint) = executor(&spilled_sc, mode.clone()).run_with_stats();
        let identical = spilled.outcome == RunOutcome::Completed
            && spilled.outputs == baseline.outputs
            && spilled.output_digest == baseline.output_digest;
        if !identical {
            violations.push(format!(
                "{label}: spilled run must complete with the unconstrained answer \
                 (got {:?}, {} vs {} outputs)",
                spilled.outcome, spilled.outputs, baseline.outputs
            ));
        }
        if spilled.spill.spilled_tuples == 0 {
            violations.push(format!("{label}: the tier never spilled"));
        }

        // The fast-path cell: the same spilled configuration with a
        // decoded-block cache and expiry-order readahead, still under the
        // identity profile. Everything the cacheless run observed must be
        // reproduced byte-for-byte; only the cache's own counters (hits,
        // misses, coalesced, prefetched, evictions) may differ from zero.
        let cache_identical = if cache_bytes > 0 {
            let cached_dir = out.join("spill-cached").join(label);
            std::fs::remove_dir_all(&cached_dir).ok();
            let mut cached_sc = constrained.clone();
            cached_sc.engine.spill = Some(
                SpillSettings {
                    profile: StorageProfile {
                        readahead_blocks: 2,
                        ..StorageProfile::default()
                    },
                    ..SpillSettings::in_dir(&cached_dir)
                }
                .with_cache_bytes(cache_bytes),
            );
            let (cached, cached_maint) = executor(&cached_sc, mode.clone()).run_with_stats();
            let mut norm = cached.clone();
            norm.spill.cache_hits = 0;
            norm.spill.cache_misses = 0;
            norm.spill.coalesced_reads = 0;
            norm.spill.prefetched_blocks = 0;
            norm.spill.cache_evictions = 0;
            let identical = format!("{norm:#?}") == format!("{spilled:#?}");
            if !identical {
                violations.push(format!(
                    "{label}: cache-enabled identity-profile run diverged from the \
                     cacheless one (got {:?}, {} vs {} outputs)",
                    cached.outcome, cached.outputs, spilled.outputs
                ));
            }
            if cached.spill.cache_hits == 0 {
                violations.push(format!(
                    "{label}: the {cache_bytes}-byte cache never served a hit"
                ));
            }

            // Crash+resume with the cache active: decoded contents are
            // deliberately not snapshotted (metadata and counters are),
            // so the resumed run rewarms lazily — and must still land
            // byte-identical to the uninterrupted cached run.
            let cached_ckpt = out.join("snapshots-cached").join(label);
            std::fs::remove_dir_all(&cached_ckpt).ok();
            match run_until_crash(
                executor(&cached_sc, mode.clone()),
                &cached_ckpt,
                60,
                vec![FaultKind::CrashAt { step: 200 }],
            ) {
                Ok(_) => match resume_latest(executor(&cached_sc, mode.clone()), &cached_ckpt) {
                    Ok((resumed, ..)) => {
                        if format!("{cached:#?}") != format!("{resumed:#?}") {
                            violations.push(format!(
                                "{label}: crash+resume with a warm cache diverged from \
                                 the uninterrupted cached run"
                            ));
                        }
                    }
                    Err(e) => violations.push(format!("{label}: cached resume failed: {e}")),
                },
                Err(e) => violations.push(format!("{label}: cached crash run failed: {e}")),
            }

            // Fault storm with cache+prefetch active: same seed must
            // still replay bit-for-bit (cache counters included — replay
            // is same-config, so they match exactly).
            let mut cached_faulted_sc = cached_sc.clone();
            cached_faulted_sc.engine.faults = Some(FaultPlan {
                seed: seed ^ 0xD15C,
                io: IoFaultConfig {
                    torn_write_prob: 0.25,
                    read_error_prob: 0.5,
                    latency_spike_prob: 0.25,
                    spike_ns: 50_000,
                },
                ..FaultPlan::default()
            });
            let storm_a = executor(&cached_faulted_sc, mode.clone()).run();
            let storm_b = executor(&cached_faulted_sc, mode.clone()).run();
            if format!("{storm_a:#?}") != format!("{storm_b:#?}") {
                violations.push(format!(
                    "{label}: faulted run with cache+prefetch did not replay identically"
                ));
            }

            cached_runs.push(cached);
            cached_maints.push(cached_maint);
            identical.to_string()
        } else {
            "skipped".to_string()
        };

        // Crash the same spilled configuration mid-run and resume it:
        // recovery with the tier active must be invisible.
        let ckpt_dir = out.join("snapshots").join(label);
        std::fs::remove_dir_all(&ckpt_dir).ok();
        let crash_identical = match run_until_crash(
            executor(&spilled_sc, mode.clone()),
            &ckpt_dir,
            60,
            vec![FaultKind::CrashAt { step: 200 }],
        ) {
            Ok(_) => match resume_latest(executor(&spilled_sc, mode.clone()), &ckpt_dir) {
                Ok((resumed, ..)) => format!("{spilled:#?}") == format!("{resumed:#?}"),
                Err(e) => {
                    violations.push(format!("{label}: resume with spill failed: {e}"));
                    false
                }
            },
            Err(e) => {
                violations.push(format!("{label}: crash run with spill failed: {e}"));
                false
            }
        };
        if !crash_identical {
            violations.push(format!(
                "{label}: crash+resume with spill diverged from the uninterrupted run"
            ));
        }

        // Disk-fault storm over the same spilled configuration: torn
        // writes are absorbed by write-verify, double read failures lose
        // blocks, spikes charge virtual time. The outcome must be typed
        // (Completed iff nothing was lost, else Degraded carrying the
        // loss) and the same seed must replay bit-for-bit.
        let mut faulted_sc = spilled_sc.clone();
        faulted_sc.engine.faults = Some(FaultPlan {
            seed: seed ^ 0xD15C,
            io: IoFaultConfig {
                torn_write_prob: 0.25,
                read_error_prob: 0.5,
                latency_spike_prob: 0.25,
                spike_ns: 50_000,
            },
            ..FaultPlan::default()
        });
        let faulted = executor(&faulted_sc, mode.clone()).run();
        let fault_outcome = match &faulted.outcome {
            RunOutcome::Completed if faulted.spill.lost_blocks == 0 => "completed",
            RunOutcome::Degraded { lost_tuples, .. }
                if faulted.spill.lost_blocks > 0 && *lost_tuples > 0 =>
            {
                "degraded"
            }
            other => {
                violations.push(format!(
                    "{label}: disk faults must end typed (Completed/Degraded matching \
                     the loss counters), got {other:?} with {:?}",
                    faulted.spill
                ));
                "violated"
            }
        };
        let fault_replay = executor(&faulted_sc, mode).run();
        let fault_replay_identical = format!("{faulted:#?}") == format!("{fault_replay:#?}");
        if !fault_replay_identical {
            violations.push(format!(
                "{label}: faulted spill run did not replay identically"
            ));
        }

        println!(
            "{label:>14}: budget {budget}, {} outputs, {} spilled, {} lost, \
             oom-without-spill {oomed}, identical {identical}, crash-resume {crash_identical}, \
             faults {fault_outcome} (replay {fault_replay_identical}), cache {cache_identical}",
            spilled.outputs, spilled.spill.spilled_tuples, spilled.spill.lost_blocks
        );
        writeln!(
            identity,
            "{label},{budget},{},{:#018x},{},{},{oomed},{identical},{crash_identical},\
             {fault_outcome},{fault_replay_identical},{cache_identical}",
            spilled.outputs,
            spilled.output_digest,
            spilled.spill.spilled_tuples,
            spilled.spill.lost_blocks
        )
        .unwrap();
        spilled_runs.push(spilled);
        spilled_maints.push(spilled_maint);
    }

    std::fs::create_dir_all(&out).expect("create output directory");
    // The diffable artifact: every measured column of the spilled runs —
    // spill counters included — must be byte-identical across thread
    // counts (ci.sh blanks only the recorded thread-count column).
    write_summary_csv(
        &spilled_runs,
        &out.join("spilled_summary.csv"),
        threads.get(),
        &[],
        &spilled_maints,
    )
    .expect("spilled summary");
    if !cached_runs.is_empty() {
        // Same shape as the cacheless artifact: every column outside the
        // cache counters must be byte-identical to spilled_summary.csv.
        write_summary_csv(
            &cached_runs,
            &out.join("spilled_cached_summary.csv"),
            threads.get(),
            &[],
            &cached_maints,
        )
        .expect("cached summary");
    }
    std::fs::write(out.join("spill_identity.csv"), identity).expect("identity csv");
    println!("summaries under {}", out.display());

    if violations.is_empty() {
        println!("spill matrix green.");
    } else {
        eprintln!("spill matrix violations:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
