//! Fleet sweep: a quick-scale parameter sweep (four indexing modes) run
//! as four tenants of one `TenantHost`, merged into one summary CSV in
//! deterministic cell order.
//!
//! Three modes, writing three CSVs that CI diffs byte-for-byte:
//!
//! * default — hosted: all cells co-resident in one host, a global
//!   budget sized so one tenant queues at admission and activates as
//!   budget frees. Writes `results/fleet_summary.csv`.
//! * `--solo` — each cell run alone through `Executor::run_with_stats`,
//!   no host anywhere. Writes `results/fleet_solo_summary.csv`.
//! * `--migrate` — hosted, but mid-sweep every running tenant is
//!   suspended to disk and resumed in a *fresh* host. Writes
//!   `results/fleet_migrated_summary.csv`.
//!
//! `hosted == solo` pins that co-residency is invisible; `hosted ==
//! migrated` pins that suspend/resume is invisible.
//!
//! Usage: `fleet_sweep [--solo | --migrate] [--seed N]`

use amri_bench::{enforce_cli, parse_seed, write_summary_csv, FlagSpec};
use amri_core::assess::AssessorKind;
use amri_engine::{Executor, IndexingMode, MemoryBudget};
use amri_hh::CombineStrategy;
use amri_serve::{run_fleet, run_fleet_migrated, FleetCell, FleetOutcome, HostConfig};
use amri_stream::VirtualDuration;
use amri_synth::scenario::{paper_scenario, Scale};
use amri_synth::DriftingWorkload;
use std::path::Path;

/// Quanta the `--migrate` mode runs before suspending the whole fleet —
/// deep enough that every tenant has real in-flight state.
const SUSPEND_AFTER_QUANTA: u64 = 24;

/// The sweep: one cell per indexing mode, identical workloads. Finite
/// per-tenant budgets so the host's reservations are real.
fn cells(seed: u64) -> Vec<FleetCell<DriftingWorkload>> {
    let modes: Vec<(&str, u32, IndexingMode)> = vec![
        (
            "amri-cdia-highest",
            2,
            IndexingMode::Amri {
                assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
                initial: None,
            },
        ),
        (
            "hash-2",
            1,
            IndexingMode::AdaptiveHash {
                n_indices: 2,
                initial: None,
            },
        ),
        (
            "static-bitmap",
            1,
            IndexingMode::StaticBitmap { configs: None },
        ),
        ("scan", 1, IndexingMode::Scan),
    ];
    modes
        .into_iter()
        .map(|(label, weight, mode)| {
            FleetCell::new(label, weight, move || {
                let mut sc = paper_scenario(Scale::Quick, seed);
                sc.engine.duration = VirtualDuration::from_secs(8);
                sc.engine.budget = MemoryBudget::mib(8);
                Executor::try_new(&sc.query, sc.workload(), mode.clone(), sc.engine.clone())
            })
        })
        .collect()
}

/// Global budget admitting three of the four 8-MiB reservations, so the
/// admission queue is exercised on every hosted run.
fn host_config() -> HostConfig {
    HostConfig {
        budget: MemoryBudget::mib(24),
        ..HostConfig::default()
    }
}

fn write(outcomes: &[FleetOutcome], path: &Path) {
    let runs: Vec<_> = outcomes.iter().map(|o| o.result.clone()).collect();
    let maint: Vec<_> = outcomes.iter().map(|o| o.maint).collect();
    write_summary_csv(&runs, path, 1, &[], &maint).expect("write summary CSV");
    println!("wrote {}", path.display());
}

const FLAGS: &[FlagSpec] = &[
    ("--solo", false, "run each cell alone, no host"),
    (
        "--migrate",
        false,
        "suspend mid-sweep, resume in a fresh host",
    ),
    ("--seed", true, "master seed (default 42)"),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    enforce_cli(&args, "fleet_sweep", FLAGS);
    let seed = parse_seed(&args);
    let solo = args.iter().any(|a| a == "--solo");
    let migrate = args.iter().any(|a| a == "--migrate");

    if solo {
        println!("fleet sweep (seed {seed}): solo baseline, 4 cells sequentially");
        let mut outcomes = Vec::new();
        for cell in cells(seed) {
            let exec = cell.executor().expect("valid engine configuration");
            let (result, maint) = exec.run_with_stats();
            println!("  {:<20} {:?}", cell.label, result.outcome);
            outcomes.push(FleetOutcome {
                label: cell.label,
                result,
                maint,
                quanta: 0,
            });
        }
        write(&outcomes, Path::new("results/fleet_solo_summary.csv"));
        return;
    }

    if migrate {
        println!(
            "fleet sweep (seed {seed}): hosted, suspended after {SUSPEND_AFTER_QUANTA} quanta, \
             resumed in a fresh host"
        );
        let dir = Path::new("results/checkpoints/fleet_sweep");
        std::fs::remove_dir_all(dir).ok();
        let outcomes = run_fleet_migrated(&cells(seed), host_config(), SUSPEND_AFTER_QUANTA, dir)
            .expect("migrated fleet");
        for o in &outcomes {
            println!(
                "  {:<20} {:?} ({} quanta)",
                o.label, o.result.outcome, o.quanta
            );
        }
        write(&outcomes, Path::new("results/fleet_migrated_summary.csv"));
        return;
    }

    println!("fleet sweep (seed {seed}): 4 tenants co-resident in one host");
    let outcomes = run_fleet(&cells(seed), host_config()).expect("hosted fleet");
    for o in &outcomes {
        println!(
            "  {:<20} {:?} ({} quanta)",
            o.label, o.result.outcome, o.quanta
        );
    }
    write(&outcomes, Path::new("results/fleet_summary.csv"));
}
