//! Crash-recovery acceptance matrix: every indexing mode is run once
//! uninterrupted and once crash-at-step-k + resumed-from-snapshot, and the
//! two `RunResult`s must be byte-identical (Debug render). The matching
//! summary CSVs are written under `--out` so `scripts/ci.sh` can diff them
//! byte-for-byte, and a recovery CSV records the bench-side checkpoint
//! counters. `--torn` additionally corrupts the latest snapshot in flight,
//! forcing recovery through the checksum fallback to the previous good
//! image. Exits non-zero listing every violated cell.
//!
//! With `--spill-cache N` every cell additionally carries a disk spill
//! tier with an N-byte decoded-block cache, so the byte-identity proof
//! also covers resuming into a lazily rewarmed cache.
//!
//! With `--tuner {paper,bandit,static}` the AMRI cells run under the
//! chosen tuning policy, so the byte-identity proof also covers resuming
//! the bandit tuner's arm statistics, backoff timers, regret accumulator
//! and RNG stream — including the `amri-governed-faulted` cell, where the
//! snapshot rides an active fault plan.
//!
//! Usage: `crash_matrix [--quick] [--seed N] [--threads N]
//!         [--checkpoint-every N] [--crash-at STEP] [--out DIR] [--torn]
//!         [--spill-cache N] [--tuner K]`

use amri_bench::{
    apply_threads, enforce_cli, parse_checkpoint_every, parse_scale, parse_seed, parse_spill_cache,
    parse_threads, parse_tuner, resume_latest, run_until_crash, write_summary_csv, CheckpointNote,
    FlagSpec, COMMON_FLAGS, SPILL_CACHE_FLAG, TUNER_FLAG,
};
use amri_core::assess::AssessorKind;
use amri_engine::{
    DegradationPolicy, Executor, FaultKind, FaultPlan, IndexingMode, SpillSettings, TornMode,
};
use amri_stream::VirtualDuration;
use amri_synth::scenario::{paper_scenario, PaperScenario, Scale};
use std::fmt::Write as _;
use std::path::PathBuf;

fn parse_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn parse_out(args: &[String]) -> PathBuf {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/crash_matrix"))
}

/// The recovery lineup: one representative per index flavor, plus the
/// adversarial cell — AMRI with the degradation governor and a noisy
/// fault plan active (the hardest state to carry through a snapshot).
fn lineup(seed: u64) -> Vec<(&'static str, IndexingMode, bool)> {
    let _ = seed;
    vec![
        (
            "amri",
            IndexingMode::Amri {
                assessor: AssessorKind::Csria,
                initial: None,
            },
            false,
        ),
        (
            "hash-3",
            IndexingMode::AdaptiveHash {
                n_indices: 3,
                initial: None,
            },
            false,
        ),
        (
            "static-bitmap",
            IndexingMode::StaticBitmap { configs: None },
            false,
        ),
        ("scan", IndexingMode::Scan, false),
        (
            "amri-governed-faulted",
            IndexingMode::Amri {
                assessor: AssessorKind::Csria,
                initial: None,
            },
            true,
        ),
    ]
}

fn scenario(scale: Scale, seed: u64, perturbed: bool) -> PaperScenario {
    let mut sc = paper_scenario(scale, seed);
    if scale == Scale::Quick {
        sc.engine.duration = VirtualDuration::from_secs(8);
    }
    if perturbed {
        sc.engine.degradation = Some(DegradationPolicy::default());
        sc.engine.faults = Some(FaultPlan {
            seed: seed ^ 0x5eed,
            drop_prob: 0.05,
            duplicate_prob: 0.05,
            reorder_prob: 0.15,
            late_prob: 0.1,
            late_by: VirtualDuration::from_secs(2),
            ..FaultPlan::default()
        });
    }
    sc
}

const EXTRA_FLAGS: &[FlagSpec] = &[
    (
        "--checkpoint-every",
        true,
        "snapshot every N pipeline steps (default 60)",
    ),
    ("--crash-at", true, "injected crash step (default 200)"),
    (
        "--out",
        true,
        "output directory (default results/crash_matrix)",
    ),
    ("--torn", false, "tear the latest snapshot in flight"),
    SPILL_CACHE_FLAG,
    TUNER_FLAG,
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flags: Vec<FlagSpec> = COMMON_FLAGS
        .iter()
        .chain(EXTRA_FLAGS.iter())
        .copied()
        .collect();
    enforce_cli(&args, "crash_matrix", &flags);
    let scale = parse_scale(&args);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);
    let every = parse_checkpoint_every(&args).unwrap_or(60);
    let crash_at = parse_u64(&args, "--crash-at", 200);
    let out = parse_out(&args);
    let torn = args.iter().any(|a| a == "--torn");
    let cache_bytes = parse_spill_cache(&args);
    let tuner_kind = parse_tuner(&args);
    println!(
        "crash matrix (scale {scale:?}, seed {seed}, {threads} thread(s), \
         checkpoint every {every}, crash at {crash_at}{}, cache {cache_bytes} B, \
         tuner {})",
        if torn { ", torn latest snapshot" } else { "" },
        tuner_kind.label()
    );

    let mut violations: Vec<String> = Vec::new();
    let mut baselines = Vec::new();
    let mut resumed_runs = Vec::new();
    let mut base_maints = Vec::new();
    let mut resumed_maints = Vec::new();
    let mut recovery = String::from(
        "label,crash_step,checkpoints_taken,resumed_from_step,snapshots_skipped,identical\n",
    );
    let mut notes: Vec<CheckpointNote> = Vec::new();

    for (label, mode, perturbed) in lineup(seed) {
        let sc = scenario(scale, seed, perturbed);
        let exec = |mode: IndexingMode| {
            let mut engine = sc.engine.clone();
            engine.tuner_kind = tuner_kind;
            if cache_bytes > 0 {
                engine.spill = Some(
                    SpillSettings::in_dir(out.join("spill").join(label))
                        .with_cache_bytes(cache_bytes),
                );
            }
            apply_threads(&mut engine, threads);
            Executor::try_new(&sc.query, sc.workload(), mode, engine)
                .expect("valid engine configuration")
        };
        let (baseline, base_maint) = exec(mode.clone()).run_with_stats();

        let dir = out.join("snapshots").join(label);
        std::fs::remove_dir_all(&dir).ok();
        let mut faults = vec![FaultKind::CrashAt { step: crash_at }];
        if torn {
            // Snapshots land at every, 2·every, … < crash_at, so this
            // many are taken before the crash; the torn write corrupts
            // the last one (0-based sequence = count − 1).
            let taken_before_crash = (crash_at - 1) / every;
            faults.push(FaultKind::TornWrite {
                snapshot: taken_before_crash.saturating_sub(1),
                mode: TornMode::Truncate,
            });
        }
        let (taken, resumed, note, resumed_maint, skipped) =
            match run_until_crash(exec(mode.clone()), &dir, every, faults) {
                Ok((step, taken)) => {
                    assert_eq!(step, crash_at);
                    match resume_latest(exec(mode), &dir) {
                        Ok((r, note, maint, report)) => {
                            (taken, r, note, maint, report.skipped.len() as u64)
                        }
                        Err(e) => {
                            violations.push(format!("{label}: resume failed: {e}"));
                            continue;
                        }
                    }
                }
                Err(e) => {
                    violations.push(format!("{label}: crash run failed: {e}"));
                    continue;
                }
            };

        let identical = format!("{baseline:#?}") == format!("{resumed:#?}");
        if !identical {
            violations.push(format!("{label}: resumed run diverged from baseline"));
        }
        if base_maint != resumed_maint {
            violations.push(format!(
                "{label}: maintenance ticks diverged after resume \
                 ({base_maint:?} vs {resumed_maint:?})"
            ));
        }
        if torn && skipped == 0 {
            violations.push(format!("{label}: torn snapshot was not skipped"));
        }
        println!(
            "{label:>22}: crash@{crash_at}, {taken} snapshot(s), resumed from step {}, \
             {skipped} skipped, {}",
            note.resumed_from_step.unwrap_or(0),
            if identical { "identical" } else { "DIVERGED" }
        );
        writeln!(
            recovery,
            "{label},{crash_at},{taken},{},{skipped},{identical}",
            note.resumed_from_step.unwrap_or(0)
        )
        .unwrap();
        baselines.push(baseline);
        resumed_runs.push(resumed);
        base_maints.push(base_maint);
        resumed_maints.push(resumed_maint);
        notes.push(note);
    }

    // The diffable pair: both summaries are pure functions of the
    // RunResults plus the maintenance ticks (no checkpoint notes).
    // Maintenance ticks are part of the snapshot image, so byte-equal
    // files == recovered state (including the maintenance accounting) is
    // indistinguishable from never having crashed.
    write_summary_csv(
        &baselines,
        &out.join("baseline_summary.csv"),
        threads.get(),
        &[],
        &base_maints,
    )
    .expect("baseline summary");
    write_summary_csv(
        &resumed_runs,
        &out.join("resumed_summary.csv"),
        threads.get(),
        &[],
        &resumed_maints,
    )
    .expect("resumed summary");
    // The bookkeeping view, with the checkpoint columns populated.
    write_summary_csv(
        &resumed_runs,
        &out.join("recovery_summary.csv"),
        threads.get(),
        &notes,
        &resumed_maints,
    )
    .expect("recovery summary");
    std::fs::write(out.join("recovery.csv"), recovery).expect("recovery csv");
    println!("summaries under {}", out.display());

    if violations.is_empty() {
        println!("crash matrix green.");
    } else {
        eprintln!("crash matrix violations:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
