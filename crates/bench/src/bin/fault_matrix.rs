//! CI fault-injection smoke matrix: every fault kind crossed with every
//! shedding policy at quick scale. Each cell must survive (no
//! `OutOfMemory`) and, where checked, replay bit-for-bit from its seed.
//! Exits non-zero listing every violated cell, so `scripts/ci.sh` can gate
//! on it.
//!
//! With `--checkpoint-every N` the replay spot-checks additionally run
//! through a checkpointer writing into `results/checkpoints/fault_matrix`
//! and must stay bit-identical — pinning that snapshotting is a pure
//! observer even under active shedding and fault injection.
//!
//! With `--spill-cache N` every cell additionally carries a disk spill
//! tier with an N-byte decoded-block cache, so the survive-and-replay
//! guarantees also cover the spill fast path under ingest faults.
//!
//! With `--tuner {paper,bandit,static}` the AMRI replay spot-check runs
//! under the chosen tuning policy, so the bit-for-bit guarantee also
//! covers the bandit's arm statistics, backoff timers and RNG stream.
//!
//! The replay byte-compares cover the [`MaintenanceStats`] alongside the
//! `RunResult`: a replay that silently re-migrates (different
//! `migrate_stalls` or migration ticks) fails the diff even though the
//! outputs agree.
//!
//! Usage: `fault_matrix [--seed N] [--threads N] [--checkpoint-every N]
//!         [--spill-cache N] [--tuner K]`

use amri_bench::{
    apply_threads, enforce_cli, parse_checkpoint_every, parse_seed, parse_spill_cache,
    parse_threads, parse_tuner, FlagSpec, SPILL_CACHE_FLAG, TUNER_FLAG,
};
use amri_core::TunerKind;
use amri_engine::{
    DegradationPolicy, Executor, FaultPlan, IndexingMode, MaintenanceStats, MemoryBudget,
    PressureWindow, RunOutcome, RunResult, SheddingPolicy, SkewedClock, SpillSettings,
};
use amri_stream::{VirtualClock, VirtualDuration, VirtualTime};
use amri_synth::scenario::{paper_scenario, Scale};

/// A pressure spike over the governor's high-water mark but under the
/// budget: ungoverned cells ride it out, governed cells must degrade
/// through it — either way the run survives.
fn pressure_spike() -> Vec<PressureWindow> {
    vec![PressureWindow {
        from: VirtualTime::from_secs(30),
        until: VirtualTime::from_secs(35),
        bytes: 49 * 1024 * 1024,
    }]
}

fn fault_kinds(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let base = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    vec![
        ("clean", base.clone()),
        (
            "drop",
            FaultPlan {
                drop_prob: 0.2,
                ..base.clone()
            },
        ),
        (
            "duplicate",
            FaultPlan {
                duplicate_prob: 0.2,
                ..base.clone()
            },
        ),
        (
            "late",
            FaultPlan {
                late_prob: 0.2,
                late_by: VirtualDuration::from_secs(2),
                ..base.clone()
            },
        ),
        (
            "reorder",
            FaultPlan {
                reorder_prob: 0.3,
                ..base.clone()
            },
        ),
        (
            "pressure",
            FaultPlan {
                pressure: pressure_spike(),
                ..base.clone()
            },
        ),
        (
            "mixed",
            FaultPlan {
                drop_prob: 0.05,
                duplicate_prob: 0.05,
                reorder_prob: 0.1,
                late_prob: 0.05,
                late_by: VirtualDuration::from_secs(1),
                pressure: pressure_spike(),
                ..base
            },
        ),
    ]
}

fn shedding_policies(seed: u64) -> Vec<(&'static str, Option<DegradationPolicy>)> {
    // The backlog cap is deliberately tiny so quick-scale join bursts
    // actually hit it and every shedding policy's admit path runs.
    let policy = |shedding| DegradationPolicy {
        high_water: 0.9,
        low_water: 0.7,
        max_backlog: 8,
        shedding,
        seed,
    };
    vec![
        ("ungoverned", None),
        ("drop-oldest", Some(policy(SheddingPolicy::DropOldest))),
        ("drop-newest", Some(policy(SheddingPolicy::DropNewest))),
        (
            "probabilistic",
            Some(policy(SheddingPolicy::Probabilistic { drop_prob: 0.5 })),
        ),
    ]
}

/// Per-cell spill settings: an identity-profile tier with an N-byte
/// block cache under its own directory, or `None` when the cache flag is
/// off (the all-RAM matrix, exactly as before).
fn spill_for(cache_bytes: u64, tag: &str) -> Option<SpillSettings> {
    (cache_bytes > 0).then(|| {
        SpillSettings::in_dir(format!("results/spill/fault_matrix/{tag}"))
            .with_cache_bytes(cache_bytes)
    })
}

fn cell_executor(
    seed: u64,
    threads: std::num::NonZeroUsize,
    plan: &FaultPlan,
    degradation: Option<DegradationPolicy>,
    spill: Option<SpillSettings>,
    mode: IndexingMode,
    tuner_kind: TunerKind,
) -> Executor<amri_synth::DriftingWorkload> {
    let mut sc = paper_scenario(Scale::Quick, seed);
    sc.engine.budget = MemoryBudget::mib(50);
    sc.engine.degradation = degradation;
    sc.engine.faults = Some(plan.clone());
    sc.engine.spill = spill;
    sc.engine.tuner_kind = tuner_kind;
    apply_threads(&mut sc.engine, threads);
    Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
}

fn run_cell(
    seed: u64,
    threads: std::num::NonZeroUsize,
    plan: &FaultPlan,
    degradation: Option<DegradationPolicy>,
    spill: Option<SpillSettings>,
) -> (RunResult, MaintenanceStats) {
    cell_executor(
        seed,
        threads,
        plan,
        degradation,
        spill,
        IndexingMode::Scan,
        TunerKind::default(),
    )
    .run_with_stats()
}

fn outcome_label(r: &RunResult) -> String {
    match r.outcome {
        RunOutcome::Completed => "ok".into(),
        RunOutcome::Degraded { first_at, .. } => format!("deg@{:.0}s", first_at.as_secs_f64()),
        RunOutcome::OutOfMemory { at } => format!("OOM@{:.0}s", at.as_secs_f64()),
    }
}

const FLAGS: &[FlagSpec] = &[
    ("--seed", true, "master seed (default 42)"),
    (
        "--threads",
        true,
        "worker threads for sharded index execution (default 1)",
    ),
    (
        "--checkpoint-every",
        true,
        "replay spot-checks also snapshot every N steps",
    ),
    SPILL_CACHE_FLAG,
    TUNER_FLAG,
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    enforce_cli(&args, "fault_matrix", FLAGS);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);
    let checkpoint_every = parse_checkpoint_every(&args);
    let cache_bytes = parse_spill_cache(&args);
    let tuner_kind = parse_tuner(&args);
    println!(
        "fault matrix (seed {seed}, {threads} thread(s), cache {cache_bytes} B, \
         tuner {})",
        tuner_kind.label()
    );

    let mut violations: Vec<String> = Vec::new();
    println!(
        "{:>10} {:>14} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "fault", "shedding", "outcome", "outputs", "shed", "evicted", "faults"
    );
    for (fname, plan) in fault_kinds(seed) {
        for (sname, policy) in shedding_policies(seed) {
            let spill = spill_for(cache_bytes, &format!("{fname}-{sname}"));
            let (r, _) = run_cell(seed, threads, &plan, policy, spill);
            println!(
                "{:>10} {:>14} {:>10} {:>8} {:>8} {:>8} {:>8}",
                fname,
                sname,
                outcome_label(&r),
                r.outputs,
                r.degradation.shed_jobs,
                r.degradation.evicted_tuples,
                r.faults.total()
            );
            if matches!(r.outcome, RunOutcome::OutOfMemory { .. }) {
                violations.push(format!("{fname} x {sname}: died {}", outcome_label(&r)));
            }
            if r.outputs == 0 {
                violations.push(format!("{fname} x {sname}: produced no output"));
            }
        }
    }

    // Determinism spot-checks: the mixed plan (every fault kind at once)
    // must replay bit-for-bit under each shedding policy — and, when
    // checkpointing is requested, stay bit-identical while snapshotting
    // (the pure-observer property under shedding + injected faults).
    let (_, mixed) = fault_kinds(seed).pop().expect("fault_kinds is non-empty");
    for (sname, policy) in shedding_policies(seed) {
        let spill = || spill_for(cache_bytes, &format!("replay-{sname}"));
        let (a, a_maint) = run_cell(seed, threads, &mixed, policy, spill());
        let (b, b_maint) = match checkpoint_every {
            Some(every) => {
                let dir = format!("results/checkpoints/fault_matrix/{sname}");
                std::fs::remove_dir_all(&dir).ok();
                let (r, note, maint) = amri_bench::run_checkpointed(
                    cell_executor(
                        seed,
                        threads,
                        &mixed,
                        policy,
                        spill(),
                        IndexingMode::Scan,
                        TunerKind::default(),
                    ),
                    std::path::Path::new(&dir),
                    every,
                )
                .expect("checkpointed replay");
                println!("replay {sname:>14}: {} snapshot(s)", note.checkpoints_taken);
                (r, maint)
            }
            None => run_cell(seed, threads, &mixed, policy, spill()),
        };
        // The maintenance stats ride the compare: a replay that silently
        // re-migrates (extra migrate_stalls / migration ticks) must fail
        // even when the outputs agree.
        if format!("{a:#?}\n{a_maint:#?}") != format!("{b:#?}\n{b_maint:#?}") {
            violations.push(format!("mixed x {sname}: replay diverged"));
        } else {
            println!("replay {sname:>14}: identical");
        }
    }

    // AMRI replay spot-check under the mixed plan with the selected
    // tuning policy: the tuner's mutable state (for the bandit: arm
    // statistics, backoff timers, regret accumulator, RNG stream) must
    // replay bit-for-bit under injected faults too.
    {
        let amri = || IndexingMode::Amri {
            assessor: amri_core::assess::AssessorKind::Csria,
            initial: None,
        };
        let spill = || spill_for(cache_bytes, "replay-amri");
        let run = || {
            cell_executor(seed, threads, &mixed, None, spill(), amri(), tuner_kind).run_with_stats()
        };
        let (a, a_maint) = run();
        let (b, b_maint) = run();
        if format!("{a:#?}\n{a_maint:#?}") != format!("{b:#?}\n{b_maint:#?}") {
            violations.push(format!(
                "mixed x amri-{}: replay diverged",
                tuner_kind.label()
            ));
        } else {
            println!(
                "replay {:>14}: identical",
                format!("amri-{}", tuner_kind.label())
            );
        }
    }

    // Clock-skew smoke: a governed run on a 20%-fast clock survives and
    // replays identically.
    let skewed = |_: ()| {
        let mut sc = paper_scenario(Scale::Quick, seed);
        sc.engine.budget = MemoryBudget::mib(50);
        sc.engine.degradation = Some(DegradationPolicy {
            high_water: 0.9,
            low_water: 0.7,
            max_backlog: 512,
            shedding: SheddingPolicy::DropOldest,
            seed,
        });
        sc.engine.faults = Some(mixed.clone());
        sc.engine.spill = spill_for(cache_bytes, "skewed-clock");
        apply_threads(&mut sc.engine, threads);
        Executor::try_new(
            &sc.query,
            sc.workload(),
            IndexingMode::Scan,
            sc.engine.clone(),
        )
        .expect("valid engine configuration")
        .into_pipeline_with_clock(SkewedClock::new(VirtualClock::new(), 1_200_000))
        .run()
    };
    let a = skewed(());
    let b = skewed(());
    if format!("{a:#?}") != format!("{b:#?}") {
        violations.push("skewed clock: replay diverged".into());
    } else if matches!(a.outcome, RunOutcome::OutOfMemory { .. }) {
        violations.push(format!("skewed clock: died {}", outcome_label(&a)));
    } else {
        println!("replay    skewed-clock: identical ({})", outcome_label(&a));
    }

    if violations.is_empty() {
        println!("fault matrix green.");
    } else {
        eprintln!("fault matrix violations:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
