//! CI fault-injection smoke matrix: every fault kind crossed with every
//! shedding policy at quick scale. Each cell must survive (no
//! `OutOfMemory`) and, where checked, replay bit-for-bit from its seed.
//! Exits non-zero listing every violated cell, so `scripts/ci.sh` can gate
//! on it.
//!
//! With `--checkpoint-every N` the replay spot-checks additionally run
//! through a checkpointer writing into `results/checkpoints/fault_matrix`
//! and must stay bit-identical — pinning that snapshotting is a pure
//! observer even under active shedding and fault injection.
//!
//! With `--spill-cache N` every cell additionally carries a disk spill
//! tier with an N-byte decoded-block cache, so the survive-and-replay
//! guarantees also cover the spill fast path under ingest faults.
//!
//! Usage: `fault_matrix [--seed N] [--threads N] [--checkpoint-every N]
//!         [--spill-cache N]`

use amri_bench::{
    apply_threads, enforce_cli, parse_checkpoint_every, parse_seed, parse_spill_cache,
    parse_threads, FlagSpec, SPILL_CACHE_FLAG,
};
use amri_engine::{
    DegradationPolicy, Executor, FaultPlan, IndexingMode, MemoryBudget, PressureWindow, RunOutcome,
    RunResult, SheddingPolicy, SkewedClock, SpillSettings,
};
use amri_stream::{VirtualClock, VirtualDuration, VirtualTime};
use amri_synth::scenario::{paper_scenario, Scale};

/// A pressure spike over the governor's high-water mark but under the
/// budget: ungoverned cells ride it out, governed cells must degrade
/// through it — either way the run survives.
fn pressure_spike() -> Vec<PressureWindow> {
    vec![PressureWindow {
        from: VirtualTime::from_secs(30),
        until: VirtualTime::from_secs(35),
        bytes: 49 * 1024 * 1024,
    }]
}

fn fault_kinds(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let base = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    vec![
        ("clean", base.clone()),
        (
            "drop",
            FaultPlan {
                drop_prob: 0.2,
                ..base.clone()
            },
        ),
        (
            "duplicate",
            FaultPlan {
                duplicate_prob: 0.2,
                ..base.clone()
            },
        ),
        (
            "late",
            FaultPlan {
                late_prob: 0.2,
                late_by: VirtualDuration::from_secs(2),
                ..base.clone()
            },
        ),
        (
            "reorder",
            FaultPlan {
                reorder_prob: 0.3,
                ..base.clone()
            },
        ),
        (
            "pressure",
            FaultPlan {
                pressure: pressure_spike(),
                ..base.clone()
            },
        ),
        (
            "mixed",
            FaultPlan {
                drop_prob: 0.05,
                duplicate_prob: 0.05,
                reorder_prob: 0.1,
                late_prob: 0.05,
                late_by: VirtualDuration::from_secs(1),
                pressure: pressure_spike(),
                ..base
            },
        ),
    ]
}

fn shedding_policies(seed: u64) -> Vec<(&'static str, Option<DegradationPolicy>)> {
    // The backlog cap is deliberately tiny so quick-scale join bursts
    // actually hit it and every shedding policy's admit path runs.
    let policy = |shedding| DegradationPolicy {
        high_water: 0.9,
        low_water: 0.7,
        max_backlog: 8,
        shedding,
        seed,
    };
    vec![
        ("ungoverned", None),
        ("drop-oldest", Some(policy(SheddingPolicy::DropOldest))),
        ("drop-newest", Some(policy(SheddingPolicy::DropNewest))),
        (
            "probabilistic",
            Some(policy(SheddingPolicy::Probabilistic { drop_prob: 0.5 })),
        ),
    ]
}

/// Per-cell spill settings: an identity-profile tier with an N-byte
/// block cache under its own directory, or `None` when the cache flag is
/// off (the all-RAM matrix, exactly as before).
fn spill_for(cache_bytes: u64, tag: &str) -> Option<SpillSettings> {
    (cache_bytes > 0).then(|| {
        SpillSettings::in_dir(format!("results/spill/fault_matrix/{tag}"))
            .with_cache_bytes(cache_bytes)
    })
}

fn cell_executor(
    seed: u64,
    threads: std::num::NonZeroUsize,
    plan: &FaultPlan,
    degradation: Option<DegradationPolicy>,
    spill: Option<SpillSettings>,
) -> Executor<amri_synth::DriftingWorkload> {
    let mut sc = paper_scenario(Scale::Quick, seed);
    sc.engine.budget = MemoryBudget::mib(50);
    sc.engine.degradation = degradation;
    sc.engine.faults = Some(plan.clone());
    sc.engine.spill = spill;
    apply_threads(&mut sc.engine, threads);
    Executor::try_new(
        &sc.query,
        sc.workload(),
        IndexingMode::Scan,
        sc.engine.clone(),
    )
    .expect("valid engine configuration")
}

fn run_cell(
    seed: u64,
    threads: std::num::NonZeroUsize,
    plan: &FaultPlan,
    degradation: Option<DegradationPolicy>,
    spill: Option<SpillSettings>,
) -> RunResult {
    cell_executor(seed, threads, plan, degradation, spill).run()
}

fn outcome_label(r: &RunResult) -> String {
    match r.outcome {
        RunOutcome::Completed => "ok".into(),
        RunOutcome::Degraded { first_at, .. } => format!("deg@{:.0}s", first_at.as_secs_f64()),
        RunOutcome::OutOfMemory { at } => format!("OOM@{:.0}s", at.as_secs_f64()),
    }
}

const FLAGS: &[FlagSpec] = &[
    ("--seed", true, "master seed (default 42)"),
    (
        "--threads",
        true,
        "worker threads for sharded index execution (default 1)",
    ),
    (
        "--checkpoint-every",
        true,
        "replay spot-checks also snapshot every N steps",
    ),
    SPILL_CACHE_FLAG,
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    enforce_cli(&args, "fault_matrix", FLAGS);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);
    let checkpoint_every = parse_checkpoint_every(&args);
    let cache_bytes = parse_spill_cache(&args);
    println!("fault matrix (seed {seed}, {threads} thread(s), cache {cache_bytes} B)");

    let mut violations: Vec<String> = Vec::new();
    println!(
        "{:>10} {:>14} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "fault", "shedding", "outcome", "outputs", "shed", "evicted", "faults"
    );
    for (fname, plan) in fault_kinds(seed) {
        for (sname, policy) in shedding_policies(seed) {
            let spill = spill_for(cache_bytes, &format!("{fname}-{sname}"));
            let r = run_cell(seed, threads, &plan, policy, spill);
            println!(
                "{:>10} {:>14} {:>10} {:>8} {:>8} {:>8} {:>8}",
                fname,
                sname,
                outcome_label(&r),
                r.outputs,
                r.degradation.shed_jobs,
                r.degradation.evicted_tuples,
                r.faults.total()
            );
            if matches!(r.outcome, RunOutcome::OutOfMemory { .. }) {
                violations.push(format!("{fname} x {sname}: died {}", outcome_label(&r)));
            }
            if r.outputs == 0 {
                violations.push(format!("{fname} x {sname}: produced no output"));
            }
        }
    }

    // Determinism spot-checks: the mixed plan (every fault kind at once)
    // must replay bit-for-bit under each shedding policy — and, when
    // checkpointing is requested, stay bit-identical while snapshotting
    // (the pure-observer property under shedding + injected faults).
    let (_, mixed) = fault_kinds(seed).pop().expect("fault_kinds is non-empty");
    for (sname, policy) in shedding_policies(seed) {
        let spill = || spill_for(cache_bytes, &format!("replay-{sname}"));
        let a = run_cell(seed, threads, &mixed, policy, spill());
        let b = match checkpoint_every {
            Some(every) => {
                let dir = format!("results/checkpoints/fault_matrix/{sname}");
                std::fs::remove_dir_all(&dir).ok();
                let (r, note, _maint) = amri_bench::run_checkpointed(
                    cell_executor(seed, threads, &mixed, policy, spill()),
                    std::path::Path::new(&dir),
                    every,
                )
                .expect("checkpointed replay");
                println!("replay {sname:>14}: {} snapshot(s)", note.checkpoints_taken);
                r
            }
            None => run_cell(seed, threads, &mixed, policy, spill()),
        };
        if format!("{a:#?}") != format!("{b:#?}") {
            violations.push(format!("mixed x {sname}: replay diverged"));
        } else {
            println!("replay {sname:>14}: identical");
        }
    }

    // Clock-skew smoke: a governed run on a 20%-fast clock survives and
    // replays identically.
    let skewed = |_: ()| {
        let mut sc = paper_scenario(Scale::Quick, seed);
        sc.engine.budget = MemoryBudget::mib(50);
        sc.engine.degradation = Some(DegradationPolicy {
            high_water: 0.9,
            low_water: 0.7,
            max_backlog: 512,
            shedding: SheddingPolicy::DropOldest,
            seed,
        });
        sc.engine.faults = Some(mixed.clone());
        sc.engine.spill = spill_for(cache_bytes, "skewed-clock");
        apply_threads(&mut sc.engine, threads);
        Executor::try_new(
            &sc.query,
            sc.workload(),
            IndexingMode::Scan,
            sc.engine.clone(),
        )
        .expect("valid engine configuration")
        .into_pipeline_with_clock(SkewedClock::new(VirtualClock::new(), 1_200_000))
        .run()
    };
    let a = skewed(());
    let b = skewed(());
    if format!("{a:#?}") != format!("{b:#?}") {
        violations.push("skewed clock: replay diverged".into());
    } else if matches!(a.outcome, RunOutcome::OutOfMemory { .. }) {
        violations.push(format!("skewed clock: died {}", outcome_label(&a)));
    } else {
        println!("replay    skewed-clock: identical ({})", outcome_label(&a));
    }

    if violations.is_empty() {
        println!("fault matrix green.");
    } else {
        eprintln!("fault matrix violations:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
