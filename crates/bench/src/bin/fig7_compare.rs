//! `EXP-F7-AMRI-VS-HASH` / `EXP-F7-AMRI-VS-BITMAP` — regenerate Figure 7:
//! AMRI (CDIA-highest) vs the best hash configuration vs the non-adapting
//! bitmap index. Paper headlines: +93% over the best hash configuration,
//! +75% over the non-adapting bitmap (which died at 15.5 min).
//!
//! Usage: `fig7_compare [--quick] [--seed N] [--threads N]`

use amri_bench::{
    fig7_compare, parse_scale, parse_seed, parse_threads, render_ascii_chart, render_series_table,
    render_summary, write_csv,
};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);

    eprintln!("running Figure 7 comparison ({scale:?}, seed {seed})...");
    let result = fig7_compare(scale, seed, threads);
    let runs = vec![
        result.amri.clone(),
        result.best_hash.clone(),
        result.bitmap.clone(),
    ];

    println!("== Figure 7 — AMRI vs best hash configuration vs non-adapting bitmap ==");
    println!("{}", render_ascii_chart(&runs, 72, 18));
    println!("{}", render_series_table(&runs, 16));
    println!("{}", render_summary(&runs));
    println!(
        "AMRI gain over best hash ({}): {:+.0}%   (paper: +93%)",
        result.best_hash.label,
        result.gain_over_hash() * 100.0
    );
    println!(
        "AMRI gain over non-adapting bitmap: {:+.0}%   (paper: +75%)",
        result.gain_over_bitmap() * 100.0
    );

    let csv = Path::new("results/fig7_compare.csv");
    write_csv(&runs, csv).expect("write CSV");
    eprintln!("series written to {}", csv.display());
}
