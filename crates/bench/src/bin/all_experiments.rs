//! Run every §V experiment end to end and print a combined report —
//! the one-command regeneration entry point referenced by EXPERIMENTS.md.
//! With `--checkpoint-every N` the suite finishes with a crash-replay
//! proof: the AMRI flavor is crashed mid-run, resumed from its latest
//! snapshot, and must land byte-identical to an uninterrupted twin
//! (summary under `results/crash_replay_summary.csv`).
//!
//! Usage: `all_experiments [--quick] [--seed N] [--threads N]
//!         [--checkpoint-every N]`

use amri_bench::{
    fig6_assessment_with_stats, fig6_hash_with_stats, fig7_compare, parse_checkpoint_every,
    parse_scale, parse_seed, parse_threads, render_maintenance_table, render_series_table,
    render_summary, resume_latest, run_until_crash, table2_example, write_csv, write_summary_csv,
};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);
    let checkpoint_every = parse_checkpoint_every(&args);

    println!(
        "################ AMRI experiment suite ({scale:?}, seed {seed}, {threads} thread(s)) ################\n"
    );

    println!("== Table II worked example ==");
    let t2 = table2_example();
    println!(
        "CSRIA config {} | CDIA config {} | optimum {}",
        t2.csria_config, t2.cdia_config, t2.optimal_config
    );
    assert_eq!(t2.cdia_config, t2.optimal_config);
    println!();

    eprintln!("running Figure 6 assessment lineup...");
    let (assess, assess_maint): (Vec<_>, Vec<_>) = fig6_assessment_with_stats(scale, seed, threads)
        .into_iter()
        .unzip();
    println!("== Figure 6 — assessment methods ==");
    println!("{}", render_series_table(&assess, 12));
    println!("{}", render_summary(&assess));
    println!("{}", render_maintenance_table(&assess, &assess_maint));
    write_csv(&assess, Path::new("results/fig6_assessment.csv")).expect("csv");
    write_summary_csv(
        &assess,
        Path::new("results/fig6_assessment_summary.csv"),
        threads.get(),
        &[],
        &assess_maint,
    )
    .expect("csv");

    eprintln!("running Figure 6 hash sweep...");
    let (hash, hash_maint): (Vec<_>, Vec<_>) = fig6_hash_with_stats(scale, seed, threads)
        .into_iter()
        .unzip();
    println!("== Figure 6 — hash baselines ==");
    println!("{}", render_series_table(&hash, 12));
    println!("{}", render_summary(&hash));
    println!("{}", render_maintenance_table(&hash, &hash_maint));
    write_csv(&hash, Path::new("results/fig6_hash.csv")).expect("csv");
    write_summary_csv(
        &hash,
        Path::new("results/fig6_hash_summary.csv"),
        threads.get(),
        &[],
        &hash_maint,
    )
    .expect("csv");

    eprintln!("running Figure 7 comparison...");
    let f7 = fig7_compare(scale, seed, threads);
    let f7_runs = vec![f7.amri.clone(), f7.best_hash.clone(), f7.bitmap.clone()];
    println!("== Figure 7 ==");
    println!("{}", render_series_table(&f7_runs, 12));
    println!("{}", render_summary(&f7_runs));
    println!("{}", render_maintenance_table(&f7_runs, &f7.maint));
    println!(
        "AMRI vs best hash: {:+.0}% (paper +93%) | AMRI vs static bitmap: {:+.0}% (paper +75%)",
        f7.gain_over_hash() * 100.0,
        f7.gain_over_bitmap() * 100.0
    );
    write_csv(&f7_runs, Path::new("results/fig7_compare.csv")).expect("csv");
    write_summary_csv(
        &f7_runs,
        Path::new("results/fig7_compare_summary.csv"),
        threads.get(),
        &[],
        &f7.maint,
    )
    .expect("csv");

    if let Some(every) = checkpoint_every {
        use amri_bench::apply_threads;
        use amri_core::assess::AssessorKind;
        use amri_engine::{Executor, FaultKind, IndexingMode};
        use amri_synth::scenario::paper_scenario;

        eprintln!("running crash-replay proof (checkpoint every {every} steps)...");
        let mut sc = paper_scenario(amri_synth::scenario::Scale::Quick, seed);
        apply_threads(&mut sc.engine, threads);
        let exec = || {
            Executor::try_new(
                &sc.query,
                sc.workload(),
                IndexingMode::Amri {
                    assessor: AssessorKind::Csria,
                    initial: None,
                },
                sc.engine.clone(),
            )
            .expect("valid engine configuration")
        };
        let baseline = exec().run();
        let dir = Path::new("results/checkpoints/all_experiments");
        std::fs::remove_dir_all(dir).ok();
        let crash_at = every * 3 + every / 2;
        let (step, taken) = run_until_crash(
            exec(),
            dir,
            every,
            vec![FaultKind::CrashAt { step: crash_at }],
        )
        .expect("crash run");
        let (resumed, note, maint, report) = resume_latest(exec(), dir).expect("resume");
        assert!(report.skipped.is_empty());
        assert_eq!(
            format!("{baseline:#?}"),
            format!("{resumed:#?}"),
            "resumed run must be byte-identical to the uninterrupted one"
        );
        println!(
            "== Crash replay == crashed at step {step} after {taken} snapshot(s), \
             resumed from step {}, byte-identical",
            note.resumed_from_step.unwrap_or(0)
        );
        write_summary_csv(
            &[resumed],
            Path::new("results/crash_replay_summary.csv"),
            threads.get(),
            &[note],
            &[maint],
        )
        .expect("csv");
    }

    println!("\nall experiment CSVs under results/");
}
