//! `EXP-F6-ASSESS` — regenerate Figure 6's assessment-method comparison:
//! cumulative throughput over time for AMRI under SRIA, CSRIA, DIA,
//! CDIA-random and CDIA-highest.
//!
//! Usage: `fig6_assessment [--quick] [--seed N] [--threads N]`

use amri_bench::{
    fig6_assessment, parse_scale, parse_seed, parse_threads, render_ascii_chart,
    render_series_table, render_summary, write_csv,
};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);

    eprintln!("running Figure 6 assessment lineup ({scale:?}, seed {seed})...");
    let runs = fig6_assessment(scale, seed, threads);

    println!("== Figure 6 — index assessment methods (cumulative throughput) ==");
    println!("{}", render_ascii_chart(&runs, 72, 18));
    println!("{}", render_series_table(&runs, 16));
    println!("{}", render_summary(&runs));

    let best = runs.iter().max_by_key(|r| r.outputs).unwrap();
    let sria = runs
        .iter()
        .find(|r| r.label.ends_with("SRIA") && !r.label.contains("CSRIA"))
        .unwrap();
    let csria = runs.iter().find(|r| r.label.contains("CSRIA")).unwrap();
    println!(
        "best method: {} ({} outputs); vs SRIA/DIA {:+.1}%, vs CSRIA {:+.1}%",
        best.label,
        best.outputs,
        (best.outputs as f64 / sria.outputs.max(1) as f64 - 1.0) * 100.0,
        (best.outputs as f64 / csria.outputs.max(1) as f64 - 1.0) * 100.0,
    );

    let csv = Path::new("results/fig6_assessment.csv");
    write_csv(&runs, csv).expect("write CSV");
    eprintln!("series written to {}", csv.display());
}
