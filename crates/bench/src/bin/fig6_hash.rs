//! `EXP-F6-HASH` — regenerate Figure 6's state-of-the-art baseline sweep:
//! access modules with 1..=7 hash indices (CDIA-highest statistics,
//! conventional index selection). The paper: none survived past ~12.5 min;
//! all died of memory exhaustion.
//!
//! Usage: `fig6_hash [--quick] [--seed N] [--threads N]`

use amri_bench::{
    fig6_hash, parse_scale, parse_seed, parse_threads, render_ascii_chart, render_series_table,
    render_summary, write_csv,
};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);

    eprintln!("running Figure 6 hash-index sweep ({scale:?}, seed {seed})...");
    let runs = fig6_hash(scale, seed, threads);

    println!("== Figure 6 — state-of-the-art AMR indexing (1..7 hash indices) ==");
    println!("{}", render_ascii_chart(&runs, 72, 18));
    println!("{}", render_series_table(&runs, 16));
    println!("{}", render_summary(&runs));

    let deaths: Vec<String> = runs
        .iter()
        .filter_map(|r| {
            r.death_time()
                .map(|t| format!("{}@{:.1}m", r.label, t.as_mins_f64()))
        })
        .collect();
    println!(
        "runs dead of memory exhaustion: {}/{} [{}]",
        deaths.len(),
        runs.len(),
        deaths.join(", ")
    );

    let csv = Path::new("results/fig6_hash.csv");
    write_csv(&runs, csv).expect("write CSV");
    eprintln!("series written to {}", csv.display());
}
