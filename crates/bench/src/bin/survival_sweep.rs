//! Survival sweep — the "who dies when" table underlying Figures 6 and 7:
//! every index flavor on the identical trained scenario, with death times,
//! peak memory/backlog and mean job latency. This is the calibration view
//! of the §V experiments (the figure binaries print the aligned series).
//!
//! With `--checkpoint-every N` every run also snapshots itself every N
//! steps (a pure observer — the numbers are unchanged), the table gains a
//! `ckpts` column, and the sweep writes `results/survival_summary.csv`
//! with the checkpoint bookkeeping columns populated.
//!
//! With `--spill-cache N` every flavor additionally carries a disk spill
//! tier with an N-byte decoded-block cache (its own directory per
//! flavor), so the survival table also reflects the spill fast path.
//!
//! With `--tuner {paper,bandit,static}` the AMRI flavor runs under the
//! chosen tuning policy (the baselines are unaffected), so the survival
//! table can compare safe tuning against the paper's greedy loop.
//!
//! Usage: `survival_sweep [--quick] [--seed N] [--threads N]
//!         [--checkpoint-every N] [--spill-cache N] [--tuner K]`

use amri_bench::training::train_initial;
use amri_bench::{
    apply_threads, enforce_cli, parse_checkpoint_every, parse_scale, parse_seed, parse_spill_cache,
    parse_threads, parse_tuner, run_checkpointed, write_summary_csv, CheckpointNote, FlagSpec,
    COMMON_FLAGS, SPILL_CACHE_FLAG, TUNER_FLAG,
};
use amri_core::assess::AssessorKind;
use amri_engine::{Executor, IndexingMode, SpillSettings};
use amri_hh::CombineStrategy;
use amri_synth::scenario::{paper_scenario, Scale};

const EXTRA_FLAGS: &[FlagSpec] = &[
    (
        "--checkpoint-every",
        true,
        "snapshot every N pipeline steps (default off)",
    ),
    SPILL_CACHE_FLAG,
    TUNER_FLAG,
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flags: Vec<FlagSpec> = COMMON_FLAGS
        .iter()
        .chain(EXTRA_FLAGS.iter())
        .copied()
        .collect();
    enforce_cli(&args, "survival_sweep", &flags);
    let scale = parse_scale(&args);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);
    let checkpoint_every = parse_checkpoint_every(&args);
    let cache_bytes = parse_spill_cache(&args);
    let tuner_kind = parse_tuner(&args);

    let mut sc = paper_scenario(scale, seed);
    sc.engine.tuner_kind = tuner_kind;
    apply_threads(&mut sc.engine, threads);
    let train = match scale {
        Scale::Paper => 120,
        Scale::Quick => 20,
    };
    let init = train_initial(&sc, train);
    eprintln!("trained configurations: {:?}", init.configs);
    eprintln!("threads: {threads} (shards: {})", sc.engine.shards);

    let mut modes: Vec<(String, IndexingMode)> = vec![(
        "AMRI".into(),
        IndexingMode::Amri {
            assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
            initial: Some(init.configs.clone()),
        },
    )];
    for k in 1..=7 {
        modes.push((
            format!("hash-{k}"),
            IndexingMode::AdaptiveHash {
                n_indices: k,
                initial: Some(init.hash_patterns(k)),
            },
        ));
    }
    modes.push((
        "static-bitmap".into(),
        IndexingMode::StaticBitmap {
            configs: Some(init.configs.clone()),
        },
    ));

    println!(
        "{:>14} {:>10} {:>8} {:>12} {:>10} {:>12} {:>6}",
        "flavor", "outputs", "death", "peak-mem(B)", "backlog", "latency(tk)", "ckpts"
    );
    let mut runs = Vec::new();
    let mut notes: Vec<CheckpointNote> = Vec::new();
    let mut maints = Vec::new();
    for (label, mode) in modes {
        let mut engine = sc.engine.clone();
        if cache_bytes > 0 {
            engine.spill = Some(
                SpillSettings::in_dir(format!("results/spill/survival/{label}"))
                    .with_cache_bytes(cache_bytes),
            );
        }
        let exec = Executor::try_new(&sc.query, sc.workload(), mode, engine)
            .expect("valid engine configuration");
        let (r, note, maint) = match checkpoint_every {
            Some(every) => {
                let dir = format!("results/checkpoints/survival/{label}");
                std::fs::remove_dir_all(&dir).ok();
                run_checkpointed(exec, std::path::Path::new(&dir), every).expect("checkpointed run")
            }
            None => {
                let (r, maint) = exec.run_with_stats();
                (r, CheckpointNote::default(), maint)
            }
        };
        let death = r
            .death_time()
            .map(|t| format!("{:.1}m", t.as_mins_f64()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>14} {:>10} {:>8} {:>12} {:>10} {:>12.0} {:>6}",
            label,
            r.outputs,
            death,
            r.series.peak_memory(),
            r.series.peak_backlog(),
            r.mean_job_latency_ticks,
            note.checkpoints_taken
        );
        runs.push(r);
        notes.push(note);
        maints.push(maint);
    }
    write_summary_csv(
        &runs,
        std::path::Path::new("results/survival_summary.csv"),
        threads.get(),
        &notes,
        &maints,
    )
    .expect("summary csv");
}
