//! `EXP-T2-EXAMPLE` — regenerate the Table II worked example (§IV-C2 /
//! §IV-D2): CSRIA deletes the individually-infrequent `<A,*,*>` and
//! `<A,B,*>` statistics and picks a 4-bit configuration without the A
//! attribute; CDIA folds them together (8% ≥ θ=5%) and recovers the true
//! optimal configuration A:1|B:1|C:2.

use amri_bench::table2_example;

fn main() {
    let r = table2_example();
    println!("== Table II worked example (θ=5%, ε=0.1%, 4-bit IC) ==\n");
    println!("CSRIA frequent patterns:");
    for (p, f) in &r.csria_frequent {
        println!("  {p}  {:.1}%", f * 100.0);
    }
    println!("CDIA (random combination) frequent patterns:");
    for (p, f) in &r.cdia_frequent {
        println!("  {p}  {:.1}%", f * 100.0);
    }
    println!();
    println!("configuration from CSRIA statistics : {}", r.csria_config);
    println!("configuration from CDIA statistics  : {}", r.cdia_config);
    println!("true optimal configuration          : {}", r.optimal_config);
    println!();
    if r.cdia_config == r.optimal_config && r.csria_config != r.optimal_config {
        println!("reproduced: CDIA finds the true optimum, CSRIA does not.");
    } else {
        println!("WARNING: the worked example did not reproduce as described.");
        std::process::exit(1);
    }
}
