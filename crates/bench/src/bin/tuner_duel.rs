//! Tuner duel — the safe-tuning head-to-head (`EXP-DUEL`): the paper's
//! greedy tuner vs the bandit tuner vs the static-IC oracle, on (a) the
//! paper's rotating drift and (b) the adversarial A/B flip built to defeat
//! greedy retuning (its phase length undercuts the bandit's
//! migration-amortization horizon). All six cells share the query, the
//! quasi-trained starting configurations and the seed; only the tuning
//! policy differs.
//!
//! The table makes the robustness claim observable: under adversarial
//! drift the paper tuner keeps migrating into flips that invert before
//! the migration amortizes (high `retunes`, realized benefit far below
//! predicted, large regret), while the bandit's hysteresis/backoff keeps
//! its cumulative cost within the configured regret bound of the static
//! oracle. The summary CSV lands in `results/tuner_duel_summary.csv`
//! (regret/thrash columns included) for the CI same-seed replay byte-diff
//! at `--threads 1` vs `--threads 4`.
//!
//! Usage: `tuner_duel [--quick] [--seed N] [--threads N]`

use amri_bench::{
    enforce_cli, parse_scale, parse_seed, parse_threads, render_maintenance_table, tuner_duel,
    write_summary_csv, COMMON_FLAGS,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    enforce_cli(&args, "tuner_duel", COMMON_FLAGS);
    let scale = parse_scale(&args);
    let seed = parse_seed(&args);
    let threads = parse_threads(&args);
    println!("tuner duel (scale {scale:?}, seed {seed}, {threads} thread(s))");

    let cells = tuner_duel(scale, seed, threads);

    for drift in ["paper", "adversarial"] {
        let group: Vec<&amri_bench::DuelCell> = cells.iter().filter(|c| c.drift == drift).collect();
        let runs: Vec<_> = group.iter().map(|c| c.run.clone()).collect();
        let maints: Vec<_> = group.iter().map(|c| c.maint).collect();
        println!("\n== {drift} drift ==");
        print!("{}", render_maintenance_table(&runs, &maints));
        let by = |kind: amri_core::TunerKind| {
            group
                .iter()
                .find(|c| c.tuner == kind)
                .expect("all three policies ran")
        };
        let paper = by(amri_core::TunerKind::Paper);
        let bandit = by(amri_core::TunerKind::Bandit);
        let oracle = by(amri_core::TunerKind::Static);
        println!(
            "verdict: paper {} retunes (predicted {} ns, realized {} ns), \
             bandit {} retunes, outputs paper/bandit/static = {}/{}/{}",
            paper.run.retunes.len(),
            paper.maint.retune_benefit_predicted_ns,
            paper.maint.retune_benefit_realized_ns,
            bandit.run.retunes.len(),
            paper.run.outputs,
            bandit.run.outputs,
            oracle.run.outputs,
        );
    }

    let runs: Vec<_> = cells.iter().map(|c| c.run.clone()).collect();
    let maints: Vec<_> = cells.iter().map(|c| c.maint).collect();
    write_summary_csv(
        &runs,
        std::path::Path::new("results/tuner_duel_summary.csv"),
        threads.get(),
        &[],
        &maints,
    )
    .expect("summary csv");
    println!("\nsummary: results/tuner_duel_summary.csv");
}
