//! # amri-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V), plus
//! the ablations DESIGN.md calls out. The library half (this crate) builds
//! and runs experiment lineups and renders their reports; the `src/bin`
//! binaries are thin CLIs over it, and `benches/` hosts the Criterion
//! micro/meso benchmarks.
//!
//! * [`experiments`] — one runner per experiment id (`EXP-F6-ASSESS`,
//!   `EXP-F6-HASH`, `EXP-F7-*`, `EXP-T2-EXAMPLE`).
//! * [`training`] — the paper's "quasi training data" bootstrap: observe a
//!   short run, then select initial index configurations / hash patterns.
//! * [`report`] — figure-shaped text tables and CSV emission.
//! * [`crash`] — checkpointed / crash-and-resume run drivers for the
//!   recovery experiments (`crash_matrix`, the `--checkpoint-every` flag).
//! * [`parallel`] — scoped-thread fan-out over independent runs.
//! * [`cli`] — the shared `--quick` / `--seed` / `--threads` flag parsing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod crash;
pub mod experiments;
pub mod parallel;
pub mod report;
pub mod training;

pub use cli::{
    apply_threads, check_args, enforce_cli, parse_checkpoint_every, parse_scale, parse_seed,
    parse_spill_cache, parse_threads, parse_tuner, usage, wants_help, FlagSpec, COMMON_FLAGS,
    SPILL_CACHE_FLAG, TUNER_FLAG,
};
pub use crash::{resume_latest, run_checkpointed, run_until_crash};
pub use experiments::{
    fig6_assessment, fig6_assessment_with_stats, fig6_hash, fig6_hash_with_stats, fig7_compare,
    table2_example, tuner_duel, DuelCell, Fig7Result, Table2Result,
};
pub use parallel::run_all;
pub use report::{
    render_ascii_chart, render_maintenance_table, render_series_table, render_summary, write_csv,
    write_summary_csv, CheckpointNote,
};
pub use training::train_initial;
