//! Tiny shared CLI helpers for the `src/bin` experiment binaries.
//!
//! Every binary accepts the same three flags — `--quick`, `--seed N` and
//! `--threads N` — parsed here so the bins stay thin and agree on
//! defaults. `--threads 1` (the default) leaves the engine configuration
//! untouched and therefore reproduces the sequential numbers exactly.

use amri_core::TunerKind;
use amri_engine::EngineConfig;
use amri_synth::scenario::Scale;
use std::fmt::Write as _;
use std::num::NonZeroUsize;

/// One flag an experiment binary accepts: `(--name, takes a value,
/// one-line description)`.
pub type FlagSpec = (&'static str, bool, &'static str);

/// The three flags every binary shares (see the module docs).
pub const COMMON_FLAGS: &[FlagSpec] = &[
    ("--quick", false, "quick scale instead of full paper scale"),
    ("--seed", true, "master seed (default 42)"),
    (
        "--threads",
        true,
        "worker threads for sharded index execution (default 1)",
    ),
];

/// Render the canonical usage banner for `bin` over its flag table.
pub fn usage(bin: &str, flags: &[FlagSpec]) -> String {
    let mut s = format!("usage: {bin} [options]\n\noptions:\n");
    for (name, takes_value, help) in flags {
        let left = if *takes_value {
            format!("{name} N")
        } else {
            (*name).to_string()
        };
        let _ = writeln!(s, "  {left:<22}{help}");
    }
    let _ = writeln!(s, "  {:<22}print this help and exit", "-h, --help");
    s
}

/// True if the user asked for help.
pub fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

/// Scan `args` (argv, program name first) against the flag table:
/// anything not in the table — and not a value consumed by a
/// value-taking flag — is an error naming the offender. Typo'd flags
/// silently falling through to defaults is how an experiment quietly
/// runs the wrong configuration.
///
/// # Errors
/// The first unknown argument, as a human-readable message.
pub fn check_args(args: &[String], flags: &[FlagSpec]) -> Result<(), String> {
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        match flags.iter().find(|(name, ..)| name == a) {
            Some((_, true, _)) => i += 2, // flag + its value
            Some(_) => i += 1,
            None if a == "--help" || a == "-h" => i += 1,
            None => return Err(format!("unknown argument `{a}`")),
        }
    }
    Ok(())
}

/// The shared front door for every experiment binary's `main`: print the
/// usage banner and exit 0 on `--help`/`-h`, or report the first unknown
/// argument with the banner on stderr and exit 2. Returns normally only
/// when the argument vector is clean.
pub fn enforce_cli(args: &[String], bin: &str, flags: &[FlagSpec]) {
    if wants_help(args) {
        print!("{}", usage(bin, flags));
        std::process::exit(0);
    }
    if let Err(e) = check_args(args, flags) {
        eprintln!("{bin}: {e}");
        eprint!("{}", usage(bin, flags));
        std::process::exit(2);
    }
}

/// `--quick` selects [`Scale::Quick`]; otherwise [`Scale::Paper`].
pub fn parse_scale(args: &[String]) -> Scale {
    if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Paper
    }
}

/// `--seed N` (default 42).
pub fn parse_seed(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64)
}

/// `--threads N` (default 1): worker threads for sharded index execution.
pub fn parse_threads(args: &[String]) -> NonZeroUsize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(NonZeroUsize::MIN)
}

/// `--checkpoint-every N` (default off): snapshot the run every N
/// pipeline steps. `0` and malformed values disable checkpointing, same
/// as omitting the flag — checkpointing is a pure observer either way.
pub fn parse_checkpoint_every(args: &[String]) -> Option<u64> {
    args.iter()
        .position(|a| a == "--checkpoint-every")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .filter(|&n: &u64| n > 0)
}

/// The `--spill-cache N` flag spec, shared by the spill-bearing binaries.
pub const SPILL_CACHE_FLAG: FlagSpec = (
    "--spill-cache",
    true,
    "spill-tier block cache budget in bytes (default 0: cache off)",
);

/// `--spill-cache N` (default 0): byte budget for the spill tier's
/// decoded-block cache. `0` and malformed values keep the cache off —
/// the byte-exact pre-cache read path, coin stream included.
pub fn parse_spill_cache(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "--spill-cache")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The `--tuner {paper,bandit,static}` flag spec, shared by the binaries
/// whose AMRI runs accept a tuning-policy override.
pub const TUNER_FLAG: FlagSpec = (
    "--tuner",
    true,
    "AMRI tuning policy: paper, bandit or static (default paper)",
);

/// `--tuner K` (default [`TunerKind::Paper`]). Unlike the numeric flags,
/// a malformed policy name is a hard error: silently tuning with the
/// wrong policy would invalidate the whole experiment.
pub fn parse_tuner(args: &[String]) -> TunerKind {
    match args
        .iter()
        .position(|a| a == "--tuner")
        .and_then(|i| args.get(i + 1))
    {
        None => TunerKind::default(),
        Some(s) => TunerKind::parse(s).unwrap_or_else(|| {
            eprintln!("unknown tuner policy `{s}` (expected paper, bandit or static)");
            std::process::exit(2);
        }),
    }
}

/// Point an engine configuration at `threads` workers: parallelism is the
/// thread count and the arena is split into the next power of two ≥ that
/// many shards so every worker owns at least one shard. One thread leaves
/// the configuration at its defaults — the byte-exact sequential path.
pub fn apply_threads(engine: &mut EngineConfig, threads: NonZeroUsize) {
    engine.parallelism = threads;
    engine.shards = threads.get().next_power_of_two();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn flags_parse_with_defaults() {
        let args = argv(&["bin", "--quick", "--seed", "7", "--threads", "4"]);
        assert_eq!(parse_scale(&args), Scale::Quick);
        assert_eq!(parse_seed(&args), 7);
        assert_eq!(parse_threads(&args).get(), 4);
        let bare = argv(&["bin"]);
        assert_eq!(parse_scale(&bare), Scale::Paper);
        assert_eq!(parse_seed(&bare), 42);
        assert_eq!(parse_threads(&bare).get(), 1);
        // Malformed values fall back to the defaults.
        let bad = argv(&["bin", "--threads", "zero", "--seed"]);
        assert_eq!(parse_threads(&bad).get(), 1);
        assert_eq!(parse_seed(&bad), 42);
    }

    #[test]
    fn checkpoint_every_parses_and_defaults_off() {
        assert_eq!(
            parse_checkpoint_every(&argv(&["bin", "--checkpoint-every", "500"])),
            Some(500)
        );
        assert_eq!(parse_checkpoint_every(&argv(&["bin"])), None);
        assert_eq!(
            parse_checkpoint_every(&argv(&["bin", "--checkpoint-every", "0"])),
            None,
            "zero disables the periodic trigger"
        );
        assert_eq!(
            parse_checkpoint_every(&argv(&["bin", "--checkpoint-every", "lots"])),
            None
        );
    }

    #[test]
    fn spill_cache_parses_and_defaults_off() {
        assert_eq!(
            parse_spill_cache(&argv(&["bin", "--spill-cache", "1048576"])),
            1_048_576
        );
        assert_eq!(parse_spill_cache(&argv(&["bin"])), 0);
        assert_eq!(
            parse_spill_cache(&argv(&["bin", "--spill-cache", "big"])),
            0,
            "malformed values keep the cache off"
        );
    }

    #[test]
    fn tuner_flag_parses_all_policies_and_defaults_to_paper() {
        assert_eq!(parse_tuner(&argv(&["bin"])), TunerKind::Paper);
        assert_eq!(
            parse_tuner(&argv(&["bin", "--tuner", "paper"])),
            TunerKind::Paper
        );
        assert_eq!(
            parse_tuner(&argv(&["bin", "--tuner", "bandit"])),
            TunerKind::Bandit
        );
        assert_eq!(
            parse_tuner(&argv(&["bin", "--tuner", "static"])),
            TunerKind::Static
        );
    }

    #[test]
    fn unknown_arguments_are_named_and_values_are_consumed() {
        let flags: &[FlagSpec] = &[
            ("--quick", false, "quick scale"),
            ("--seed", true, "seed"),
            ("--out", true, "output dir"),
        ];
        assert_eq!(
            check_args(&argv(&["bin", "--seed", "7", "--quick"]), flags),
            Ok(())
        );
        // A value-taking flag's operand is not itself checked…
        assert_eq!(
            check_args(&argv(&["bin", "--out", "--weird-dir"]), flags),
            Ok(())
        );
        // …but a bare unknown flag is an error naming the offender.
        assert_eq!(
            check_args(&argv(&["bin", "--quick", "--sede", "7"]), flags),
            Err("unknown argument `--sede`".to_string())
        );
        // Help tokens are always accepted.
        assert_eq!(check_args(&argv(&["bin", "-h"]), flags), Ok(()));
        assert!(wants_help(&argv(&["bin", "--help"])));
        assert!(!wants_help(&argv(&["bin", "--quick"])));
    }

    #[test]
    fn usage_banner_lists_every_flag_and_help() {
        let banner = usage("crash_matrix", COMMON_FLAGS);
        assert!(banner.starts_with("usage: crash_matrix [options]"));
        for (name, ..) in COMMON_FLAGS {
            assert!(banner.contains(name), "banner must list {name}");
        }
        assert!(banner.contains("--seed N"), "value flags show an operand");
        assert!(banner.contains("-h, --help"));
    }

    #[test]
    fn apply_threads_shapes_the_engine_config() {
        let mut sc = amri_synth::scenario::paper_scenario(Scale::Quick, 1);
        apply_threads(&mut sc.engine, NonZeroUsize::MIN);
        assert_eq!(sc.engine.shards, 1, "one thread keeps the defaults");
        assert_eq!(sc.engine.parallelism.get(), 1);
        apply_threads(&mut sc.engine, NonZeroUsize::new(3).unwrap());
        assert_eq!(sc.engine.shards, 4, "shards round up to a power of two");
        assert_eq!(sc.engine.parallelism.get(), 3);
    }
}
