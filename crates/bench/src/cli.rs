//! Tiny shared CLI helpers for the `src/bin` experiment binaries.
//!
//! Every binary accepts the same three flags — `--quick`, `--seed N` and
//! `--threads N` — parsed here so the bins stay thin and agree on
//! defaults. `--threads 1` (the default) leaves the engine configuration
//! untouched and therefore reproduces the sequential numbers exactly.

use amri_engine::EngineConfig;
use amri_synth::scenario::Scale;
use std::num::NonZeroUsize;

/// `--quick` selects [`Scale::Quick`]; otherwise [`Scale::Paper`].
pub fn parse_scale(args: &[String]) -> Scale {
    if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Paper
    }
}

/// `--seed N` (default 42).
pub fn parse_seed(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64)
}

/// `--threads N` (default 1): worker threads for sharded index execution.
pub fn parse_threads(args: &[String]) -> NonZeroUsize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(NonZeroUsize::MIN)
}

/// `--checkpoint-every N` (default off): snapshot the run every N
/// pipeline steps. `0` and malformed values disable checkpointing, same
/// as omitting the flag — checkpointing is a pure observer either way.
pub fn parse_checkpoint_every(args: &[String]) -> Option<u64> {
    args.iter()
        .position(|a| a == "--checkpoint-every")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .filter(|&n: &u64| n > 0)
}

/// Point an engine configuration at `threads` workers: parallelism is the
/// thread count and the arena is split into the next power of two ≥ that
/// many shards so every worker owns at least one shard. One thread leaves
/// the configuration at its defaults — the byte-exact sequential path.
pub fn apply_threads(engine: &mut EngineConfig, threads: NonZeroUsize) {
    engine.parallelism = threads;
    engine.shards = threads.get().next_power_of_two();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn flags_parse_with_defaults() {
        let args = argv(&["bin", "--quick", "--seed", "7", "--threads", "4"]);
        assert_eq!(parse_scale(&args), Scale::Quick);
        assert_eq!(parse_seed(&args), 7);
        assert_eq!(parse_threads(&args).get(), 4);
        let bare = argv(&["bin"]);
        assert_eq!(parse_scale(&bare), Scale::Paper);
        assert_eq!(parse_seed(&bare), 42);
        assert_eq!(parse_threads(&bare).get(), 1);
        // Malformed values fall back to the defaults.
        let bad = argv(&["bin", "--threads", "zero", "--seed"]);
        assert_eq!(parse_threads(&bad).get(), 1);
        assert_eq!(parse_seed(&bad), 42);
    }

    #[test]
    fn checkpoint_every_parses_and_defaults_off() {
        assert_eq!(
            parse_checkpoint_every(&argv(&["bin", "--checkpoint-every", "500"])),
            Some(500)
        );
        assert_eq!(parse_checkpoint_every(&argv(&["bin"])), None);
        assert_eq!(
            parse_checkpoint_every(&argv(&["bin", "--checkpoint-every", "0"])),
            None,
            "zero disables the periodic trigger"
        );
        assert_eq!(
            parse_checkpoint_every(&argv(&["bin", "--checkpoint-every", "lots"])),
            None
        );
    }

    #[test]
    fn apply_threads_shapes_the_engine_config() {
        let mut sc = amri_synth::scenario::paper_scenario(Scale::Quick, 1);
        apply_threads(&mut sc.engine, NonZeroUsize::MIN);
        assert_eq!(sc.engine.shards, 1, "one thread keeps the defaults");
        assert_eq!(sc.engine.parallelism.get(), 1);
        apply_threads(&mut sc.engine, NonZeroUsize::new(3).unwrap());
        assert_eq!(sc.engine.shards, 4, "shards round up to a power of two");
        assert_eq!(sc.engine.parallelism.get(), 3);
    }
}
