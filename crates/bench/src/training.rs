//! Quasi-training (§V): *"The IC on each state uses 64 bits and is
//! initiated by running index selection using statistics gathered by
//! executing the stream for 15 minutes (as quasi training data). For the
//! state-of-the-art approach, the starting indices are those found to
//! support the most frequent aps."*
//!
//! We run a short observation pass of the scenario (any index flavor —
//! the observers are index-independent), then derive per-state starting
//! configurations for AMRI and starting pattern sets for the hash modules.

use amri_core::assess::AssessorKind;
use amri_core::{ApStat, IndexConfig, WorkloadProfile};
use amri_engine::{Executor, IndexingMode, RunResult};
use amri_stream::{AccessPattern, StreamId, VirtualDuration};
use amri_synth::PaperScenario;

/// Initial index settings derived from a training pass.
#[derive(Debug, Clone)]
pub struct TrainedInit {
    /// Per-state starting configuration for bit-address indices.
    pub configs: Vec<IndexConfig>,
    /// Per-state frequent patterns, most frequent first (feeds the hash
    /// modules: take the first `k`).
    pub frequent: Vec<Vec<(AccessPattern, f64)>>,
    /// The observation run itself (for diagnostics).
    pub observation: RunResult,
}

impl TrainedInit {
    /// The top-`k` patterns per state for a `k`-index hash module (padded
    /// with untrained defaults if fewer were observed).
    pub fn hash_patterns(&self, k: usize) -> Vec<Vec<AccessPattern>> {
        self.frequent
            .iter()
            .map(|stats| {
                let mut picks: Vec<AccessPattern> = stats
                    .iter()
                    .map(|&(p, _)| p)
                    .filter(|p| !p.is_empty())
                    .take(k)
                    .collect();
                let width = stats.first().map(|(p, _)| p.n_attrs()).unwrap_or(3);
                let mut next = AccessPattern::all(width).filter(|p| !p.is_empty());
                while picks.len() < k {
                    let candidate = next.next().expect("fewer than 2^w - 1 picks requested");
                    if !picks.contains(&candidate) {
                        picks.push(candidate);
                    }
                }
                picks
            })
            .collect()
    }
}

/// Run the quasi-training pass: observe `train_secs` of the scenario and
/// select starting configurations.
pub fn train_initial(scenario: &PaperScenario, train_secs: u64) -> TrainedInit {
    let mut engine = scenario.engine.clone();
    engine.duration = VirtualDuration::from_secs(train_secs);
    engine.budget = amri_engine::MemoryBudget::unlimited();
    let observation = Executor::try_new(
        &scenario.query,
        scenario.workload(),
        // Observe under an untrained even AMRI so training is not biased
        // toward any baseline; the observers are index-independent anyway.
        IndexingMode::Amri {
            assessor: AssessorKind::Sria,
            initial: None,
        },
        engine.clone(),
    )
    .expect("valid engine configuration")
    .run();

    let lambda_d = engine.lambda_d;
    let elapsed = observation.final_time.as_secs_f64().max(1.0);
    let configs = (0..scenario.query.n_streams())
        .map(|i| {
            let sid = StreamId(i as u16);
            let width = scenario.query.jas(sid).len();
            let stats = &observation.pattern_stats[i];
            let lambda_r = observation.requests[i] as f64 / elapsed;
            // §V: the starting indices "support the most frequent aps" —
            // select against the θ-frequent patterns only, exactly like the
            // online tuner does. (Feeding *all* observed patterns would
            // yield a lowest-common-denominator configuration that no
            // longer depends on the training phase.)
            let theta = engine.tuner.theta;
            let profile = WorkloadProfile::new(
                lambda_d,
                lambda_r,
                scenario.query.windows[i].length.as_secs_f64(),
                stats
                    .iter()
                    .filter(|&&(_, freq)| freq >= theta)
                    .map(|&(pattern, freq)| ApStat { pattern, freq })
                    .collect(),
            );
            amri_core::selection::select_config_greedy(
                engine.tuner.total_bits,
                width,
                &profile,
                &engine.params,
            )
        })
        .collect();

    TrainedInit {
        configs,
        frequent: observation.pattern_stats.clone(),
        observation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amri_synth::scenario::{paper_scenario, Scale};

    #[test]
    fn training_yields_nontrivial_configs() {
        let sc = paper_scenario(Scale::Quick, 9);
        let init = train_initial(&sc, 20);
        assert_eq!(init.configs.len(), 4);
        for ic in &init.configs {
            assert!(
                ic.total_bits() > 0,
                "training must spend bits on observed patterns: {ic}"
            );
        }
        // Hash patterns: k=3 gives 3 per state, no empties, no duplicates.
        let hp = init.hash_patterns(3);
        for pats in &hp {
            assert_eq!(pats.len(), 3);
            let mut dedup = pats.clone();
            dedup.sort_by_key(|p| p.mask());
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "{pats:?}");
            assert!(pats.iter().all(|p| !p.is_empty()));
        }
        // k larger than observed pads with defaults.
        let hp7 = init.hash_patterns(7);
        assert!(hp7.iter().all(|v| v.len() == 7));
    }
}
