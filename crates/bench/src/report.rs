//! Figure-shaped reporting: aligned time-series tables, run summaries and
//! CSV emission.

use amri_engine::{MaintenanceStats, RunOutcome, RunResult};
use amri_stream::VirtualTime;
use std::fmt::Write as _;
use std::path::Path;

/// Render a Figure-6-style table: one row per sampled minute fraction, one
/// column per run's cumulative throughput ("-" after a run died).
pub fn render_series_table(runs: &[RunResult], points: usize) -> String {
    let mut out = String::new();
    let horizon = runs
        .iter()
        .map(|r| r.final_time)
        .max()
        .unwrap_or(VirtualTime::ZERO);
    let mut header = format!("{:>9}", "t(min)");
    for r in runs {
        write!(header, " {:>18}", r.label).unwrap();
    }
    out.push_str(&header);
    out.push('\n');
    let points = points.max(2);
    for p in 0..points {
        let t = VirtualTime(horizon.0 * p as u64 / (points as u64 - 1));
        write!(out, "{:>9.2}", t.as_mins_f64()).unwrap();
        for r in runs {
            let dead = r.death_time().is_some_and(|d| d < t);
            if dead {
                write!(out, " {:>18}", "-").unwrap();
            } else {
                write!(out, " {:>18}", r.series.outputs_at(t)).unwrap();
            }
        }
        out.push('\n');
    }
    out
}

/// Render a per-run summary block: outcome, outputs, peaks, retunes, and
/// the degradation/fault counters (zeros for undisturbed runs).
pub fn render_summary(runs: &[RunResult]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:>18} {:>12} {:>12} {:>12} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "run",
        "outputs",
        "outcome",
        "peak-mem(B)",
        "backlog",
        "retunes",
        "shed",
        "evicted",
        "faults"
    )
    .unwrap();
    for r in runs {
        let outcome = match r.outcome {
            RunOutcome::Completed => "done".to_string(),
            RunOutcome::OutOfMemory { at } => format!("oom@{:.1}m", at.as_mins_f64()),
            RunOutcome::Degraded { first_at, .. } => {
                format!("deg@{:.1}m", first_at.as_mins_f64())
            }
        };
        writeln!(
            out,
            "{:>18} {:>12} {:>12} {:>12} {:>9} {:>8} {:>8} {:>8} {:>8}",
            r.label,
            r.outputs,
            outcome,
            r.series.peak_memory(),
            r.series.peak_backlog(),
            r.retunes.len(),
            r.degradation.shed_jobs,
            r.degradation.evicted_tuples,
            r.faults.total()
        )
        .unwrap();
    }
    out
}

/// Render the per-run maintenance-cost block: deterministic virtual
/// nanoseconds spent on ingest (insert + expire) and on index migration,
/// plus how many retunes fired while a probe backlog was pending
/// (`stalls` — migrations that delayed visible work). `ingest%` relates
/// ingest time to the run's total virtual time (ticks model microseconds,
/// so ns/1000 per tick). The trailing spill columns come from each run's
/// [`SpillStats`](amri_core::SpillStats) rollup: demand block reads, the
/// block-cache hit fraction, and readahead-loaded blocks (all zeros for
/// tierless or cacheless runs). `maint` aligns with `runs`; missing
/// entries render as zeros, so lineups that never collected stats still
/// tabulate.
pub fn render_maintenance_table(runs: &[RunResult], maint: &[MaintenanceStats]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:>18} {:>14} {:>14} {:>8} {:>8} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "run",
        "ingest-ns",
        "migrate-ns",
        "stalls",
        "retunes",
        "pred-ns",
        "realized-ns",
        "regret-ns",
        "ingest%",
        "spill-rd",
        "cache-hit%",
        "prefetched"
    )
    .unwrap();
    for (i, r) in runs.iter().enumerate() {
        let m = maint.get(i).copied().unwrap_or_default();
        let total = r.final_time.0.max(1);
        let pct = 100.0 * (m.ingest_ns as f64 / 1000.0) / total as f64;
        writeln!(
            out,
            "{:>18} {:>14} {:>14} {:>8} {:>8} {:>12} {:>12} {:>12} {:>9.1}% {:>10} {:>9.1}% {:>10}",
            r.label,
            m.ingest_ns,
            m.migrate_ns,
            m.migrate_stalls,
            r.retunes.len(),
            m.retune_benefit_predicted_ns,
            m.retune_benefit_realized_ns,
            m.regret_vs_static_ns,
            pct,
            r.spill.blocks_read,
            100.0 * r.spill.cache_hit_frac(),
            r.spill.prefetched_blocks
        )
        .unwrap();
    }
    out
}

/// Render the runs as an ASCII chart (time on x, cumulative outputs on y,
/// one glyph per run; the closest thing to the paper's figures a terminal
/// can show). Dead runs stop plotting at their death time.
pub fn render_ascii_chart(runs: &[RunResult], width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(5);
    let horizon = runs
        .iter()
        .map(|r| r.final_time)
        .max()
        .unwrap_or(VirtualTime::ZERO);
    let y_max = runs.iter().map(|r| r.outputs).max().unwrap_or(1).max(1);
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&', '='];
    let mut grid = vec![vec![' '; width]; height];
    for (ri, r) in runs.iter().enumerate() {
        let glyph = glyphs[ri % glyphs.len()];
        #[allow(clippy::needless_range_loop)] // col drives both t and grid
        for col in 0..width {
            let t = VirtualTime(horizon.0 * col as u64 / (width as u64 - 1).max(1));
            if r.death_time().is_some_and(|d| d < t) {
                break;
            }
            let v = r.series.outputs_at(t);
            let row = ((v as f64 / y_max as f64) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - row.min(height - 1);
            if grid[row][col] == ' ' {
                grid[row][col] = glyph;
            }
        }
    }
    let mut out = String::new();
    writeln!(out, "cumulative outputs (y max {y_max})").unwrap();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    writeln!(out, " 0 .. {:.1} virtual minutes", horizon.as_mins_f64()).unwrap();
    for (ri, r) in runs.iter().enumerate() {
        writeln!(out, "  {}  {}", glyphs[ri % glyphs.len()], r.label).unwrap();
    }
    out
}

/// Write the aligned series of several runs as CSV
/// (`t_secs,label1,label2,...`; empty cell after death).
pub fn write_csv(runs: &[RunResult], path: &Path) -> std::io::Result<()> {
    let mut body = String::from("t_secs");
    for r in runs {
        write!(body, ",{}", r.label).unwrap();
    }
    body.push('\n');
    let max_len = runs
        .iter()
        .map(|r| r.series.samples().len())
        .max()
        .unwrap_or(0);
    for i in 0..max_len {
        let t = runs
            .iter()
            .find_map(|r| r.series.samples().get(i).map(|s| s.t))
            .unwrap_or(VirtualTime::ZERO);
        write!(body, "{:.0}", t.as_secs_f64()).unwrap();
        for r in runs {
            match r.series.samples().get(i) {
                Some(s) => write!(body, ",{}", s.outputs).unwrap(),
                None => body.push(','),
            }
        }
        body.push('\n');
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, body)
}

/// Per-run checkpoint bookkeeping for [`write_summary_csv`]: how many
/// snapshots the run wrote and, when it was resumed from one, the step it
/// restarted at. This lives bench-side on purpose — checkpointing is a
/// pure observer and must not appear in [`RunResult`], whose Debug render
/// is the byte-identity oracle the recovery tests diff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointNote {
    /// Snapshots written during the run (0 when checkpointing was off).
    pub checkpoints_taken: u64,
    /// Step the run was resumed at, `None` for uninterrupted runs.
    pub resumed_from_step: Option<u64>,
    /// Corrupt snapshot files recovery skipped on the way to the restored
    /// one, with reasons (from
    /// [`RestoreReport::notes`](amri_engine::RestoreReport::notes));
    /// empty for clean restores and uninterrupted runs.
    pub restore_notes: String,
}

/// Write one summary row per run as CSV, including the degradation and
/// fault-injection counters — the experiment-facing face of
/// [`RunOutcome::Degraded`] (empty cells where a counter does not apply).
/// `threads` records the worker-thread count the runs executed with, so a
/// summary produced under `--threads N` is distinguishable from (and
/// diffable against) the sequential one. `notes` aligns with `runs` and
/// fills the `checkpoints_taken`/`resumed_from_step` columns; pass `&[]`
/// for uncheckpointed lineups (zero / empty cells). `maint` aligns with
/// `runs` and fills the maintenance-cost columns (`ingest_ns`,
/// `migrate_ns`, `migrate_stalls`) plus the tuner-ledger trio
/// (`retune_benefit_predicted_ns`, `retune_benefit_realized_ns`,
/// `regret_vs_static_ns`) that makes thrash observable: predicted vs
/// realized retune benefit and cumulative regret against the static seed
/// IC. The `_ns` columns carry deterministic *virtual* nanoseconds, not
/// wall-clock ones, so repeated runs diff byte-for-byte (realized benefit
/// is signed — a mispredicted retune loses time). Pass `&[]` when stats
/// were not collected (zeros).
///
/// The trailing spill columns come from each run's own
/// [`SpillStats`](amri_core::SpillStats) rollup: `spilled_buckets`
/// (blocks written to the cold store), `promoted_buckets` (blocks
/// promoted back to RAM) and `spill_read_ns` (virtual nanoseconds charged
/// for block reads), then the block-cache counters — `cache_hits`,
/// `cache_misses`, `coalesced_reads`, `prefetched_blocks`,
/// `cache_evictions` — all zeros when no spill tier (or no cache) was
/// configured. The final `notes` column carries each run's restore notes
/// (corrupt checkpoints skipped during recovery); commas are folded to
/// `;` to keep the CSV one-cell-per-column.
pub fn write_summary_csv(
    runs: &[RunResult],
    path: &Path,
    threads: usize,
    notes: &[CheckpointNote],
    maint: &[MaintenanceStats],
) -> std::io::Result<()> {
    let mut body = String::from(
        "label,outcome,outputs,peak_mem_bytes,peak_backlog,retunes,\
         shed_jobs,evicted_tuples,first_degraded_secs,death_secs,\
         faults_dropped,faults_duplicated,faults_delayed,faults_reordered,\
         threads,checkpoints_taken,resumed_from_step,\
         ingest_ns,migrate_ns,migrate_stalls,\
         retune_benefit_predicted_ns,retune_benefit_realized_ns,regret_vs_static_ns,\
         spilled_buckets,promoted_buckets,spill_read_ns,\
         cache_hits,cache_misses,coalesced_reads,prefetched_blocks,\
         cache_evictions,notes\n",
    );
    for (i, r) in runs.iter().enumerate() {
        let note = notes.get(i).cloned().unwrap_or_default();
        let m = maint.get(i).copied().unwrap_or_default();
        let outcome = match r.outcome {
            RunOutcome::Completed => "completed",
            RunOutcome::OutOfMemory { .. } => "oom",
            RunOutcome::Degraded { .. } => "degraded",
        };
        let first_degraded = r
            .degradation
            .first_at
            .map(|t| format!("{:.3}", t.as_secs_f64()))
            .unwrap_or_default();
        let death = r
            .death_time()
            .map(|t| format!("{:.3}", t.as_secs_f64()))
            .unwrap_or_default();
        let resumed = note
            .resumed_from_step
            .map(|s| s.to_string())
            .unwrap_or_default();
        writeln!(
            body,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.label,
            outcome,
            r.outputs,
            r.series.peak_memory(),
            r.series.peak_backlog(),
            r.retunes.len(),
            r.degradation.shed_jobs,
            r.degradation.evicted_tuples,
            first_degraded,
            death,
            r.faults.dropped,
            r.faults.duplicated,
            r.faults.delayed,
            r.faults.reordered,
            threads,
            note.checkpoints_taken,
            resumed,
            m.ingest_ns,
            m.migrate_ns,
            m.migrate_stalls,
            m.retune_benefit_predicted_ns,
            m.retune_benefit_realized_ns,
            m.regret_vs_static_ns,
            r.spill.blocks_written,
            r.spill.promoted_blocks,
            r.spill.read_ns,
            r.spill.cache_hits,
            r.spill.cache_misses,
            r.spill.coalesced_reads,
            r.spill.prefetched_blocks,
            r.spill.cache_evictions,
            note.restore_notes.replace(',', ";")
        )
        .unwrap();
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amri_engine::ThroughputSeries;
    use amri_stream::VirtualDuration;

    fn fake_run(label: &str, per_sec: u64, secs: u64, die_at: Option<u64>) -> RunResult {
        let mut series = ThroughputSeries::new(VirtualDuration::from_secs(1));
        let end = die_at.unwrap_or(secs);
        for s in 0..=end {
            series.record_until(VirtualTime::from_secs(s), s * per_sec, 1000 + s, s / 2);
        }
        RunResult {
            label: label.to_string(),
            series,
            outcome: match die_at {
                Some(d) => RunOutcome::OutOfMemory {
                    at: VirtualTime::from_secs(d),
                },
                None => RunOutcome::Completed,
            },
            outputs: end * per_sec,
            retunes: vec![],
            pattern_stats: vec![],
            requests: vec![],
            final_time: VirtualTime::from_secs(end),
            mean_job_latency_ticks: 0.0,
            degradation: Default::default(),
            faults: Default::default(),
            spill: Default::default(),
            output_digest: 0,
        }
    }

    #[test]
    fn series_table_marks_dead_runs() {
        let runs = vec![
            fake_run("amri", 100, 10, None),
            fake_run("hash", 50, 10, Some(5)),
        ];
        let table = render_series_table(&runs, 6);
        assert!(table.contains("amri"));
        assert!(table.contains("hash"));
        // Final row: hash is dead.
        let last = table.lines().last().unwrap();
        assert!(last.contains('-'), "{last}");
        assert!(last.contains("1000"), "{last}");
    }

    #[test]
    fn summary_includes_oom_time() {
        let runs = vec![fake_run("bitmap", 10, 20, Some(12))];
        let s = render_summary(&runs);
        assert!(s.contains("oom@0.2m"), "{s}");
        assert!(s.contains("bitmap"));
    }

    #[test]
    fn ascii_chart_plots_all_runs_and_legend() {
        let runs = vec![
            fake_run("amri", 100, 10, None),
            fake_run("hash", 40, 10, Some(6)),
        ];
        let chart = render_ascii_chart(&runs, 40, 10);
        assert!(chart.contains('*'), "{chart}");
        assert!(chart.contains('o'), "{chart}");
        assert!(chart.contains("amri"));
        assert!(chart.contains("hash"));
        assert!(chart.contains("y max 1000"));
        // The dead run's glyph must not reach the last column.
        let rows: Vec<&str> = chart.lines().filter(|l| l.starts_with('|')).collect();
        let last_col_has_o = rows.iter().any(|r| r.ends_with('o'));
        assert!(!last_col_has_o, "dead run plotted past its death:\n{chart}");
    }

    #[test]
    fn ascii_chart_handles_degenerate_sizes() {
        let runs = vec![fake_run("x", 1, 2, None)];
        let chart = render_ascii_chart(&runs, 1, 1); // clamped to minimums
        assert!(chart.contains('x'));
    }

    #[test]
    fn summary_reports_degraded_runs_and_csv_counters() {
        let mut degraded = fake_run("amri-gov", 10, 20, None);
        degraded.outcome = RunOutcome::Degraded {
            first_at: VirtualTime::from_secs(12),
            shed_jobs: 7,
            evicted_tuples: 40,
            lost_tuples: 0,
        };
        degraded.degradation.first_at = Some(VirtualTime::from_secs(12));
        degraded.degradation.shed_jobs = 7;
        degraded.degradation.evicted_tuples = 40;
        degraded.faults.dropped = 3;
        let runs = vec![degraded, fake_run("plain", 10, 20, None)];
        let s = render_summary(&runs);
        assert!(s.contains("deg@0.2m"), "{s}");
        assert!(s.contains("shed"), "{s}");

        let dir = std::env::temp_dir().join("amri_bench_summary_test");
        let path = dir.join("summary.csv");
        let notes = [CheckpointNote {
            checkpoints_taken: 5,
            resumed_from_step: Some(120),
            restore_notes: "skipped checkpoint-000002.snap (checksum mismatch, torn)".into(),
        }];
        let maint = [MaintenanceStats {
            ingest_ns: 900,
            migrate_ns: 70,
            migrate_stalls: 2,
            retune_benefit_predicted_ns: 500,
            retune_benefit_realized_ns: -120,
            regret_vs_static_ns: 64,
        }];
        write_summary_csv(&runs, &path, 4, &notes, &maint).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines[0].starts_with("label,outcome,outputs"));
        assert!(lines[0].contains("shed_jobs"));
        assert!(
            lines[0].ends_with(
                ",threads,checkpoints_taken,resumed_from_step,\
                 ingest_ns,migrate_ns,migrate_stalls,\
                 retune_benefit_predicted_ns,retune_benefit_realized_ns,\
                 regret_vs_static_ns,\
                 spilled_buckets,promoted_buckets,spill_read_ns,\
                 cache_hits,cache_misses,coalesced_reads,prefetched_blocks,\
                 cache_evictions,notes"
            ),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("degraded"), "{}", lines[1]);
        assert!(lines[1].contains(",7,40,12.000,"), "{}", lines[1]);
        // Restore notes land in the final cell with commas folded to ';'
        // so the row keeps one value per column.
        assert!(
            lines[1].ends_with(
                "3,0,0,0,4,5,120,900,70,2,500,-120,64,0,0,0,0,0,0,0,0,\
                 skipped checkpoint-000002.snap (checksum mismatch; torn)"
            ),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("completed"), "{}", lines[2]);
        // Runs without a note get zero / empty checkpoint cells, runs
        // without maintenance stats get zero maintenance columns, and
        // runs without a spill tier get zero spill columns.
        assert!(
            lines[2].ends_with(",4,0,,0,0,0,0,0,0,0,0,0,0,0,0,0,0,"),
            "{}",
            lines[2]
        );
        // A degraded run has no death time.
        assert_eq!(runs[0].death_time(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maintenance_table_renders_ticks_and_tolerates_missing_stats() {
        let runs = vec![
            fake_run("amri", 100, 10, None),
            fake_run("hash", 50, 10, None),
        ];
        let maint = [MaintenanceStats {
            ingest_ns: 1234,
            migrate_ns: 56,
            migrate_stalls: 3,
            retune_benefit_predicted_ns: 77,
            retune_benefit_realized_ns: -9,
            regret_vs_static_ns: 5,
        }];
        let table = render_maintenance_table(&runs, &maint);
        assert!(table.contains("ingest-ns"), "{table}");
        assert!(table.contains("regret-ns"), "{table}");
        assert!(table.contains("1234"), "{table}");
        assert!(table.contains("56"), "{table}");
        assert!(table.contains("77"), "{table}");
        assert!(table.contains("-9"), "{table}");
        // The second run has no stats entry: zeros, not a panic.
        let last = table.lines().last().unwrap();
        assert!(last.contains("hash"), "{table}");
        assert!(last.contains('0'), "{table}");
    }

    #[test]
    fn csv_round_trips_shape() {
        let dir = std::env::temp_dir().join("amri_bench_test");
        let path = dir.join("fig.csv");
        let runs = vec![fake_run("a", 1, 3, None), fake_run("b", 2, 3, Some(2))];
        write_csv(&runs, &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "t_secs,a,b");
        assert_eq!(lines.len(), 5); // header + t=0..3
        assert!(
            lines[4].ends_with(','),
            "dead run has empty cell: {}",
            lines[4]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
