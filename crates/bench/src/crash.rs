//! Crash/recovery drivers shared by the experiment binaries.
//!
//! The engine side (`amri_engine::runtime::checkpoint`) owns the snapshot
//! mechanics; this module packages the three moves a benchmark needs —
//! run-while-checkpointing, run-until-injected-crash, and
//! resume-from-latest-good-snapshot — and reports the bench-side
//! [`CheckpointNote`] bookkeeping that
//! [`write_summary_csv`](crate::report::write_summary_csv) emits. The
//! `RunResult` itself never mentions checkpointing: it is the
//! byte-identity oracle the recovery checks diff, so the counters ride
//! alongside it instead.

use crate::report::CheckpointNote;
use amri_engine::{
    load_latest, CheckpointPolicy, Checkpointer, EngineError, Executor, FaultKind,
    MaintenanceStats, RestoreReport, RunResult, StreamWorkload,
};
use std::path::Path;

/// Run to completion while snapshotting every `every` steps into `dir`.
///
/// Checkpointing is a pure observer, so the returned [`RunResult`] is
/// byte-identical to what `exec.run()` would have produced. The
/// [`MaintenanceStats`] ride along for the summary CSV's maintenance
/// columns; they are part of the snapshot image, so a resumed run reports
/// the same final ticks as an uninterrupted one.
///
/// # Errors
/// [`EngineError::Snapshot`] on checkpoint I/O failures.
pub fn run_checkpointed<W: StreamWorkload>(
    exec: Executor<W>,
    dir: &Path,
    every: u64,
) -> Result<(RunResult, CheckpointNote, MaintenanceStats), EngineError> {
    let fingerprint = exec.config_fingerprint();
    let mut ckpt = Checkpointer::new(dir, CheckpointPolicy::every(every))?;
    let (result, maint) = exec
        .into_pipeline()
        .run_with_stats_ckpt(Some(&mut ckpt), fingerprint)?;
    Ok((
        result,
        CheckpointNote {
            checkpoints_taken: ckpt.checkpoints_taken(),
            resumed_from_step: None,
            restore_notes: String::new(),
        },
        maint,
    ))
}

/// Run with checkpointing and the given checkpoint-layer `faults` armed;
/// the run is expected to die on an injected crash. Returns the step it
/// died at and how many snapshots were written first.
///
/// # Errors
/// [`EngineError::Snapshot`] on checkpoint I/O failures, or
/// `Malformed` (as a snapshot error) if the run survives — an armed
/// crash that never fires means the crash step was past the run's end.
pub fn run_until_crash<W: StreamWorkload>(
    exec: Executor<W>,
    dir: &Path,
    every: u64,
    faults: Vec<FaultKind>,
) -> Result<(u64, u64), EngineError> {
    let fingerprint = exec.config_fingerprint();
    let mut ckpt = Checkpointer::new(dir, CheckpointPolicy::every(every))?.with_faults(faults);
    match exec.into_pipeline().run_with(Some(&mut ckpt), fingerprint) {
        Err(EngineError::InjectedCrash { step }) => Ok((step, ckpt.checkpoints_taken())),
        Err(e) => Err(e),
        Ok(_) => Err(amri_stream::SnapshotError::Malformed(
            "the armed crash never fired — crash step past the run's end".into(),
        )
        .into()),
    }
}

/// Resume `exec` from the latest good snapshot in `dir` and run it to
/// completion. Returns the finished result, the note recording the
/// resume step (and, in its `restore_notes`, any corrupt snapshots that
/// recovery skipped, with reasons), the maintenance ticks (restored from
/// the snapshot and accumulated to the end — identical to an
/// uninterrupted run's), and the full [`RestoreReport`].
///
/// # Errors
/// Any [`EngineError::Snapshot`] from loading (no usable snapshot,
/// configuration mismatch) or from the restore itself.
pub fn resume_latest<W: StreamWorkload>(
    exec: Executor<W>,
    dir: &Path,
) -> Result<(RunResult, CheckpointNote, MaintenanceStats, RestoreReport), EngineError> {
    let (snap, report) = load_latest(dir)?;
    let step = snap.step();
    let (result, maint) = exec.resume_from(&snap)?.run_with_stats_ckpt(None, 0)?;
    Ok((
        result,
        CheckpointNote {
            checkpoints_taken: 0,
            resumed_from_step: Some(step),
            restore_notes: report.notes(),
        },
        maint,
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amri_engine::{IndexingMode, TornMode};
    use amri_stream::VirtualDuration;
    use amri_synth::scenario::{paper_scenario, Scale};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("amri-bench-crash-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn quick_exec(seed: u64) -> Executor<amri_synth::DriftingWorkload> {
        let mut sc = paper_scenario(Scale::Quick, seed);
        sc.engine.duration = VirtualDuration::from_secs(6);
        Executor::try_new(
            &sc.query,
            sc.workload(),
            IndexingMode::Scan,
            sc.engine.clone(),
        )
        .expect("valid engine configuration")
    }

    #[test]
    fn crash_resume_round_trip_matches_the_straight_run() {
        let (baseline, base_maint) = quick_exec(8).run_with_stats();
        let dir = tmpdir("roundtrip");
        let (step, taken) = run_until_crash(
            quick_exec(8),
            &dir,
            40,
            vec![FaultKind::CrashAt { step: 150 }],
        )
        .unwrap();
        assert_eq!(step, 150);
        assert!(taken >= 3);
        let (resumed, note, maint, report) = resume_latest(quick_exec(8), &dir).unwrap();
        assert!(report.skipped.is_empty());
        assert_eq!(note.restore_notes, "");
        assert_eq!(note.resumed_from_step, Some(120));
        assert_eq!(format!("{baseline:#?}"), format!("{resumed:#?}"));
        // Maintenance ticks are snapshotted, so the resumed run's final
        // tally must match the uninterrupted run's.
        assert_eq!(base_maint, maint);
        assert!(maint.ingest_ns > 0, "{maint:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observer_run_reports_its_checkpoints() {
        let dir = tmpdir("observer");
        let (baseline, base_maint) = quick_exec(3).run_with_stats();
        let (result, note, maint) = run_checkpointed(quick_exec(3), &dir, 100).unwrap();
        assert!(note.checkpoints_taken > 0);
        assert_eq!(note.resumed_from_step, None);
        assert_eq!(format!("{baseline:#?}"), format!("{result:#?}"));
        assert_eq!(base_maint, maint);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_latest_snapshot_is_skipped_on_resume() {
        let dir = tmpdir("torn");
        let baseline = quick_exec(4).run();
        // Checkpoints at 40/80/120 (seqs 0/1/2); seq 2 is torn.
        let (_, taken) = run_until_crash(
            quick_exec(4),
            &dir,
            40,
            vec![
                FaultKind::TornWrite {
                    snapshot: 2,
                    mode: TornMode::Truncate,
                },
                FaultKind::CrashAt { step: 130 },
            ],
        )
        .unwrap();
        assert_eq!(taken, 3);
        let (resumed, note, _maint, report) = resume_latest(quick_exec(4), &dir).unwrap();
        assert_eq!(
            report.skipped.len(),
            1,
            "the torn image must be skipped by checksum"
        );
        assert!(
            note.restore_notes.contains("checkpoint-000002.snap"),
            "the skipped file must be named in the note: {}",
            note.restore_notes
        );
        assert_eq!(note.resumed_from_step, Some(80));
        assert_eq!(format!("{baseline:#?}"), format!("{resumed:#?}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
