//! `ABL-COMBINE` — the CDIA combination-strategy ablation (§IV-D2):
//! random vs highest-count folding under increasingly skewed lattices.

use amri_core::assess::AssessorKind;
use amri_hh::CombineStrategy;
use amri_stream::AccessPattern;
use amri_synth::{PatternMixture, PatternWorkload};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// A drifting workload whose phases concentrate on different families.
fn drifting_workload(seed: u64) -> PatternWorkload {
    let ap = |m: u32| AccessPattern::new(m, 3);
    let phases = vec![
        PatternMixture::new(vec![(ap(0b001), 0.3), (ap(0b011), 0.3), (ap(0b111), 0.4)]),
        PatternMixture::new(vec![(ap(0b100), 0.5), (ap(0b110), 0.3), (ap(0b111), 0.2)]),
        PatternMixture::table_ii(),
    ];
    PatternWorkload::new(phases, 2000, seed)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_combine");
    for strategy in [CombineStrategy::Random, CombineStrategy::HighestCount] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut a = AssessorKind::Cdia(strategy).build(3, 0.005, 9);
                    let mut w = drifting_workload(9);
                    for _ in 0..10_000 {
                        a.record(w.next_pattern());
                    }
                    black_box(a.frequent(0.1))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
