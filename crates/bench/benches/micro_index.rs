//! Micro-benchmarks of the physical index operations (§III): insert,
//! exact/wildcard search and migration for the bit-address index vs the
//! multi-hash access module vs a full scan.

use amri_core::{
    BitAddressIndex, CostReceipt, IndexConfig, IngestStage, IoFaultConfig, MultiHashIndex,
    ScanIndex, SearchOutcome, SearchScratch, SpillConfig, SpillTier, StateIndex, StateStore,
    StorageProfile, TupleKey,
};
use amri_engine::WorkerPool;
use amri_stream::{
    AccessPattern, AttrId, AttrVec, SearchRequest, StreamId, Tuple, TupleId, VirtualTime,
    WindowSpec,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn jas(i: u64) -> AttrVec {
    AttrVec::from_slice(&[i % 64, i % 37, i % 19]).unwrap()
}

fn populated_bitaddr(n: u64, bits: Vec<u8>) -> BitAddressIndex {
    let mut idx = BitAddressIndex::new(IndexConfig::new(bits).unwrap());
    let mut r = CostReceipt::new();
    for i in 0..n {
        idx.insert(TupleKey(i as u32), &jas(i), &mut r);
    }
    idx
}

fn populated_hash(n: u64, k: usize) -> MultiHashIndex {
    let patterns: Vec<AccessPattern> = AccessPattern::all(3)
        .filter(|p| !p.is_empty())
        .take(k)
        .collect();
    let mut idx = MultiHashIndex::new(patterns);
    let mut r = CostReceipt::new();
    for i in 0..n {
        idx.insert(TupleKey(i as u32), &jas(i), &mut r);
    }
    idx
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_insert");
    g.bench_function("bitaddr_64bit", |b| {
        let mut idx = BitAddressIndex::new(IndexConfig::even(3, 64).unwrap());
        let mut i = 0u64;
        b.iter(|| {
            let mut r = CostReceipt::new();
            idx.insert(TupleKey(i as u32), &jas(i), &mut r);
            i += 1;
            black_box(r.hash_ops)
        });
    });
    for k in [1usize, 4, 7] {
        g.bench_with_input(BenchmarkId::new("multihash", k), &k, |b, &k| {
            let patterns: Vec<AccessPattern> = AccessPattern::all(3)
                .filter(|p| !p.is_empty())
                .take(k)
                .collect();
            let mut idx = MultiHashIndex::new(patterns);
            let mut i = 0u64;
            b.iter(|| {
                let mut r = CostReceipt::new();
                idx.insert(TupleKey(i as u32), &jas(i), &mut r);
                i += 1;
                black_box(r.hash_ops)
            });
        });
    }
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_search_10k");
    let n = 10_000;
    let bitaddr = populated_bitaddr(n, vec![8, 8, 8]);
    let hash = populated_hash(n, 7);
    let exact = SearchRequest::new(AccessPattern::full(3), jas(500));
    let wild = SearchRequest::new(
        AccessPattern::from_positions(&[0], 3).unwrap(),
        AttrVec::from_slice(&[500 % 64, 0, 0]).unwrap(),
    );
    // The allocating wrapper benches stay on the deprecated `search` on
    // purpose: BENCH_index.json medians were captured against it, and the
    // `_into` variants below measure the replacement.
    #[allow(deprecated)]
    g.bench_function("bitaddr_exact", |b| {
        b.iter(|| {
            let mut r = CostReceipt::new();
            black_box(bitaddr.search(black_box(&exact), &mut r))
        })
    });
    #[allow(deprecated)]
    g.bench_function("bitaddr_one_attr_wildcard", |b| {
        b.iter(|| {
            let mut r = CostReceipt::new();
            black_box(bitaddr.search(black_box(&wild), &mut r))
        })
    });
    // The engine's actual hot path: scratch-buffered, zero allocations
    // in steady state.
    g.bench_function("bitaddr_exact_into", |b| {
        let mut scratch = SearchScratch::new();
        b.iter(|| {
            let mut r = CostReceipt::new();
            bitaddr.search_into(black_box(&exact), &mut scratch, &mut r);
            black_box(scratch.hits.len())
        })
    });
    g.bench_function("bitaddr_one_attr_wildcard_into", |b| {
        let mut scratch = SearchScratch::new();
        b.iter(|| {
            let mut r = CostReceipt::new();
            bitaddr.search_into(black_box(&wild), &mut scratch, &mut r);
            black_box(scratch.hits.len())
        })
    });
    #[allow(deprecated)]
    g.bench_function("multihash7_exact", |b| {
        b.iter(|| {
            let mut r = CostReceipt::new();
            black_box(hash.search(black_box(&exact), &mut r))
        })
    });
    g.bench_function("scan_reference", |b| {
        // What a NeedScan costs at state level: compare all 10k tuples.
        let tuples: Vec<AttrVec> = (0..n).map(jas).collect();
        b.iter(|| {
            let mut hits = 0u32;
            for t in &tuples {
                if exact.matches(t.as_slice()) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    let scan = ScanIndex::new();
    #[allow(deprecated)]
    g.bench_function("scan_index_defers", |b| {
        b.iter(|| {
            let mut r = CostReceipt::new();
            black_box(matches!(
                scan.search(&exact, &mut r),
                SearchOutcome::NeedScan
            ))
        })
    });
    g.finish();
}

/// Sharded batch probe through the engine's persistent worker pool at 1,
/// 2 and 4 threads — the tentpole's scaling claim. The index, shard
/// count (4) and request batch are identical across thread counts, so
/// the ids differ only in executor parallelism; `BENCH_parallel.json`
/// records the medians and derived speedups. These ids are deliberately
/// *not* in `BENCH_index.json`, so `bench_guard.sh` never gates on them.
fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_parallel_10k");
    g.sample_size(20);
    let n = 10_000u64;
    let mut idx = BitAddressIndex::with_shards(IndexConfig::new(vec![8, 8, 8]).unwrap(), 4);
    let mut r = CostReceipt::new();
    for i in 0..n {
        idx.insert(TupleKey(i as u32), &jas(i), &mut r);
    }
    // One batch of single-attribute wildcard probes (2^16 candidate
    // buckets each — the wide, slab-walking shape that parallelizes).
    let reqs: Vec<SearchRequest> = (0..64u64)
        .map(|i| {
            SearchRequest::new(
                AccessPattern::from_positions(&[0], 3).unwrap(),
                AttrVec::from_slice(&[i % 64, 0, 0]).unwrap(),
            )
        })
        .collect();
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("wildcard_batch_probe_threads", threads),
            &threads,
            |b, &threads| {
                let pool = WorkerPool::new(std::num::NonZeroUsize::new(threads).unwrap());
                let mut scratch = SearchScratch::new();
                b.iter(|| {
                    let mut receipt = CostReceipt::new();
                    let mut hits = 0usize;
                    idx.search_batch_with(
                        black_box(&reqs),
                        &mut scratch,
                        &mut receipt,
                        &pool,
                        |_, h| hits += h.len(),
                    );
                    black_box(hits)
                });
            },
        );
    }
    g.finish();
}

fn bench_migrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_migrate_10k");
    g.sample_size(20);
    g.bench_function("bitaddr_full_rebucket", |b| {
        b.iter_batched(
            || populated_bitaddr(10_000, vec![8, 8, 8]),
            |mut idx| {
                let mut r = CostReceipt::new();
                idx.migrate(IndexConfig::new(vec![4, 10, 10]).unwrap(), &mut r);
                black_box(r.moved)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Staged parallel ingest — the tentpole's write path. 10k tuples arrive
/// in 256-tuple bursts; each burst stages its index linking per shard and
/// is applied through the worker pool, then the whole window expires in
/// one staged batch. The 4-shard index and arrival sequence are identical
/// across thread counts (the arena/window half is sequential by design),
/// so the ids differ only in executor parallelism. Like
/// `index_parallel_10k`, these ids feed `BENCH_parallel.json` and are
/// deliberately absent from `BENCH_index.json`/`bench_guard.sh`.
fn bench_ingest_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest_parallel_10k");
    g.sample_size(10);
    let n = 10_000u64;
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("insert_expire_threads", threads),
            &threads,
            |b, &threads| {
                let pool = WorkerPool::new(std::num::NonZeroUsize::new(threads).unwrap());
                b.iter_batched(
                    || {
                        StateStore::new(
                            StreamId(0),
                            vec![AttrId(0), AttrId(1), AttrId(2)],
                            WindowSpec::secs(60),
                            BitAddressIndex::with_shards(
                                IndexConfig::new(vec![8, 8, 8]).unwrap(),
                                4,
                            ),
                        )
                    },
                    |mut store| {
                        let mut receipt = CostReceipt::new();
                        let mut stage = IngestStage::new();
                        for i in 0..n {
                            let tuple = Tuple::new(
                                TupleId(i),
                                StreamId(0),
                                VirtualTime::from_secs(i / 200),
                                jas(i),
                            );
                            store.insert_staged(tuple, &mut receipt, &mut stage);
                            if i % 256 == 255 {
                                store.apply_staged(&mut stage, &pool);
                            }
                        }
                        store.apply_staged(&mut stage, &pool);
                        // Slide the window past every arrival: one staged
                        // expiry batch unlinks all 10k entries.
                        let expired = store.expire_staged(
                            VirtualTime::from_secs(10_000),
                            &mut receipt,
                            &mut stage,
                        );
                        store.apply_staged(&mut stage, &pool);
                        black_box((expired, receipt.hash_ops))
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

/// Sharded migration — `migrate_with` on the identical populated 4-shard
/// index at 1, 2 and 4 threads. The [8,8,8] → [4,10,10] target moves
/// entries across shard boundaries, so this exercises the gather +
/// redistribute path (the expensive one), not the in-place relink.
fn bench_migrate_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("migrate_parallel_10k");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("bitaddr_sharded_rebucket_threads", threads),
            &threads,
            |b, &threads| {
                let pool = WorkerPool::new(std::num::NonZeroUsize::new(threads).unwrap());
                b.iter_batched(
                    || {
                        let mut idx = BitAddressIndex::with_shards(
                            IndexConfig::new(vec![8, 8, 8]).unwrap(),
                            4,
                        );
                        let mut r = CostReceipt::new();
                        for i in 0..10_000u64 {
                            idx.insert(TupleKey(i as u32), &jas(i), &mut r);
                        }
                        idx
                    },
                    |mut idx| {
                        let mut r = CostReceipt::new();
                        idx.migrate_with(IndexConfig::new(vec![4, 10, 10]).unwrap(), &mut r, &pool);
                        black_box(r.moved)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

/// A populated state with a disk spill tier attached: 4k tuples over a
/// window wide enough that nothing expires mid-measurement.
fn spill_store(tag: &str) -> StateStore<ScanIndex> {
    spill_store_with(tag, StorageProfile::default(), 0)
}

/// `spill_store` with an explicit storage profile and block-cache budget.
fn spill_store_with(tag: &str, profile: StorageProfile, cache_bytes: u64) -> StateStore<ScanIndex> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("amri-bench-spill-{}-{tag}-{n}", std::process::id()));
    let tier = SpillTier::create(&SpillConfig {
        dir,
        file_name: "s0.blocks".into(),
        profile,
        faults: IoFaultConfig::default(),
        seed: 11,
        cache_bytes,
    })
    .expect("temp dir block store");
    let mut store = StateStore::new(
        StreamId(0),
        vec![AttrId(0), AttrId(1), AttrId(2)],
        WindowSpec::secs(1 << 20),
        ScanIndex::new(),
    )
    .with_payload_bytes(64);
    store.enable_spill(tier);
    let mut r = CostReceipt::new();
    for i in 0..4_000u64 {
        store.insert(
            Tuple::new(TupleId(i), StreamId(0), VirtualTime::from_secs(i), jas(i)),
            &mut r,
        );
    }
    store
}

/// The spill tier's data path (the robustness tentpole): cold tuples
/// leave RAM for the checksummed block store in 256-tuple chunks, hot
/// blocks come home through `promote_hottest`, and a probe-hit stub is
/// materialized from disk. Wall time here is the real `fsync`-free file
/// I/O plus frame checksumming — the physical cost the virtual
/// `StorageProfile` models.
fn bench_spill(c: &mut Criterion) {
    let mut g = c.benchmark_group("spill_4k");
    g.sample_size(20);
    g.bench_function("spill_promote_round_trip", |b| {
        b.iter_batched(
            || spill_store("round-trip"),
            |mut store| {
                let mut r = CostReceipt::new();
                let mut moved = 0usize;
                while store.spilled_frac() < 0.5 {
                    moved += store.spill_oldest(256, &mut r);
                }
                // min_reads 0: promote unconditionally, one block per call.
                while store.spilled_len() > 0 {
                    moved += store.promote_hottest(0, &mut r).moved;
                }
                black_box(moved)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("materialize_spilled_hit", |b| {
        b.iter_batched(
            || {
                let mut store = spill_store("materialize");
                let mut r = CostReceipt::new();
                while store.spilled_frac() < 0.5 {
                    store.spill_oldest(256, &mut r);
                }
                store
            },
            |mut store| {
                let mut r = CostReceipt::new();
                // The oldest tuple is spill-resident; a hit on it pays one
                // verified block read.
                let t = store
                    .materialize(TupleKey(0), &mut r)
                    .expect("block store intact")
                    .expect("tuple 0 was spilled and live");
                black_box(t.id)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// The spill-tier fast path: decoded-block cache hits, coalesced batch
/// reads and expiry-order readahead, measured against the cold verified
/// read they replace. The acceptance bar: a warm hit beats the cold
/// materialize by ≥ 5x, and a coalesced 64-hit batch beats 64
/// independent reads by ≥ 3x.
fn bench_spill_cached(c: &mut Criterion) {
    const CACHE: u64 = 1 << 20; // 1 MiB: plenty for every spilled block.
    let exec = amri_core::SequentialExecutor;

    // Fresh half-spilled store; keys 0..64 all land in the first block.
    let half_spilled = |tag: &str, profile: StorageProfile, cache: u64| {
        let mut store = spill_store_with(tag, profile, cache);
        let mut r = CostReceipt::new();
        while store.spilled_frac() < 0.5 {
            store.spill_oldest(256, &mut r);
        }
        store
    };

    let mut g = c.benchmark_group("spill_cached_4k");
    g.sample_size(20);

    // Cold read: cache enabled but empty — a miss pays the verified
    // device read plus decode plus admission.
    g.bench_function("cold_read", |b| {
        b.iter_batched(
            || half_spilled("cold", StorageProfile::default(), CACHE),
            |mut store| {
                let mut r = CostReceipt::new();
                let t = store
                    .materialize(TupleKey(0), &mut r)
                    .expect("block store intact")
                    .expect("tuple 0 was spilled and live");
                black_box(t.id)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // Warm hit: the block is already decoded in the cache — no file I/O,
    // no checksum, no decode; just the slot lookup and the entry scan.
    g.bench_function("warm_hit", |b| {
        let mut store = half_spilled("warm", StorageProfile::default(), CACHE);
        let mut r = CostReceipt::new();
        store
            .materialize(TupleKey(0), &mut r)
            .expect("block store intact")
            .expect("warming read");
        b.iter(|| {
            let mut r = CostReceipt::new();
            let t = store
                .materialize(TupleKey(0), &mut r)
                .expect("block store intact")
                .expect("tuple 0 stays cached");
            black_box(t.id)
        })
    });

    // Coalesced batch: 64 stub hits in one probe batch, grouped by
    // block — one verified read serves all of them.
    let keys: Vec<TupleKey> = (0..64).map(TupleKey).collect();
    g.bench_function("coalesced_batch_64", |b| {
        b.iter_batched(
            || {
                (
                    half_spilled("batch", StorageProfile::default(), CACHE),
                    Vec::new(),
                )
            },
            |(mut store, mut out)| {
                let mut r = CostReceipt::new();
                let lost = store.materialize_batch(&keys, &mut out, &mut r, &exec);
                assert_eq!(lost, 0);
                black_box(out.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // The baseline the batch replaces: 64 independent cacheless reads,
    // each paying its own device read.
    g.bench_function("independent_64", |b| {
        b.iter_batched(
            || half_spilled("indep", StorageProfile::default(), 0),
            |mut store| {
                let mut r = CostReceipt::new();
                let mut sum = 0u64;
                for k in &keys {
                    let t = store
                        .materialize(*k, &mut r)
                        .expect("block store intact")
                        .expect("spilled and live");
                    sum += t.id.0;
                }
                black_box(sum)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // Expiry-order readahead: plan the next-oldest blocks and drain the
    // prefetch — the background work a grid point overlaps with compute.
    g.bench_function("readahead_drain_2", |b| {
        let profile = StorageProfile {
            readahead_blocks: 2,
            ..StorageProfile::default()
        };
        b.iter_batched(
            || half_spilled("readahead", profile, CACHE),
            |mut store| {
                let mut r = CostReceipt::new();
                store.schedule_readahead();
                store.drain_prefetch(&mut r, &exec);
                black_box(store.cache_used_bytes())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_search,
    bench_parallel,
    bench_migrate,
    bench_ingest_parallel,
    bench_migrate_parallel,
    bench_spill,
    bench_spill_cached
);
criterion_main!(benches);
