//! Micro-benchmarks of the physical index operations (§III): insert,
//! exact/wildcard search and migration for the bit-address index vs the
//! multi-hash access module vs a full scan.

use amri_core::{
    BitAddressIndex, CostReceipt, IndexConfig, MultiHashIndex, ScanIndex, SearchOutcome,
    SearchScratch, StateIndex, TupleKey,
};
use amri_engine::WorkerPool;
use amri_stream::{AccessPattern, AttrVec, SearchRequest};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn jas(i: u64) -> AttrVec {
    AttrVec::from_slice(&[i % 64, i % 37, i % 19]).unwrap()
}

fn populated_bitaddr(n: u64, bits: Vec<u8>) -> BitAddressIndex {
    let mut idx = BitAddressIndex::new(IndexConfig::new(bits).unwrap());
    let mut r = CostReceipt::new();
    for i in 0..n {
        idx.insert(TupleKey(i as u32), &jas(i), &mut r);
    }
    idx
}

fn populated_hash(n: u64, k: usize) -> MultiHashIndex {
    let patterns: Vec<AccessPattern> = AccessPattern::all(3)
        .filter(|p| !p.is_empty())
        .take(k)
        .collect();
    let mut idx = MultiHashIndex::new(patterns);
    let mut r = CostReceipt::new();
    for i in 0..n {
        idx.insert(TupleKey(i as u32), &jas(i), &mut r);
    }
    idx
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_insert");
    g.bench_function("bitaddr_64bit", |b| {
        let mut idx = BitAddressIndex::new(IndexConfig::even(3, 64).unwrap());
        let mut i = 0u64;
        b.iter(|| {
            let mut r = CostReceipt::new();
            idx.insert(TupleKey(i as u32), &jas(i), &mut r);
            i += 1;
            black_box(r.hash_ops)
        });
    });
    for k in [1usize, 4, 7] {
        g.bench_with_input(BenchmarkId::new("multihash", k), &k, |b, &k| {
            let patterns: Vec<AccessPattern> = AccessPattern::all(3)
                .filter(|p| !p.is_empty())
                .take(k)
                .collect();
            let mut idx = MultiHashIndex::new(patterns);
            let mut i = 0u64;
            b.iter(|| {
                let mut r = CostReceipt::new();
                idx.insert(TupleKey(i as u32), &jas(i), &mut r);
                i += 1;
                black_box(r.hash_ops)
            });
        });
    }
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_search_10k");
    let n = 10_000;
    let bitaddr = populated_bitaddr(n, vec![8, 8, 8]);
    let hash = populated_hash(n, 7);
    let exact = SearchRequest::new(AccessPattern::full(3), jas(500));
    let wild = SearchRequest::new(
        AccessPattern::from_positions(&[0], 3).unwrap(),
        AttrVec::from_slice(&[500 % 64, 0, 0]).unwrap(),
    );
    // The allocating wrapper benches stay on the deprecated `search` on
    // purpose: BENCH_index.json medians were captured against it, and the
    // `_into` variants below measure the replacement.
    #[allow(deprecated)]
    g.bench_function("bitaddr_exact", |b| {
        b.iter(|| {
            let mut r = CostReceipt::new();
            black_box(bitaddr.search(black_box(&exact), &mut r))
        })
    });
    #[allow(deprecated)]
    g.bench_function("bitaddr_one_attr_wildcard", |b| {
        b.iter(|| {
            let mut r = CostReceipt::new();
            black_box(bitaddr.search(black_box(&wild), &mut r))
        })
    });
    // The engine's actual hot path: scratch-buffered, zero allocations
    // in steady state.
    g.bench_function("bitaddr_exact_into", |b| {
        let mut scratch = SearchScratch::new();
        b.iter(|| {
            let mut r = CostReceipt::new();
            bitaddr.search_into(black_box(&exact), &mut scratch, &mut r);
            black_box(scratch.hits.len())
        })
    });
    g.bench_function("bitaddr_one_attr_wildcard_into", |b| {
        let mut scratch = SearchScratch::new();
        b.iter(|| {
            let mut r = CostReceipt::new();
            bitaddr.search_into(black_box(&wild), &mut scratch, &mut r);
            black_box(scratch.hits.len())
        })
    });
    #[allow(deprecated)]
    g.bench_function("multihash7_exact", |b| {
        b.iter(|| {
            let mut r = CostReceipt::new();
            black_box(hash.search(black_box(&exact), &mut r))
        })
    });
    g.bench_function("scan_reference", |b| {
        // What a NeedScan costs at state level: compare all 10k tuples.
        let tuples: Vec<AttrVec> = (0..n).map(jas).collect();
        b.iter(|| {
            let mut hits = 0u32;
            for t in &tuples {
                if exact.matches(t.as_slice()) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    let scan = ScanIndex::new();
    #[allow(deprecated)]
    g.bench_function("scan_index_defers", |b| {
        b.iter(|| {
            let mut r = CostReceipt::new();
            black_box(matches!(
                scan.search(&exact, &mut r),
                SearchOutcome::NeedScan
            ))
        })
    });
    g.finish();
}

/// Sharded batch probe through the engine's persistent worker pool at 1,
/// 2 and 4 threads — the tentpole's scaling claim. The index, shard
/// count (4) and request batch are identical across thread counts, so
/// the ids differ only in executor parallelism; `BENCH_parallel.json`
/// records the medians and derived speedups. These ids are deliberately
/// *not* in `BENCH_index.json`, so `bench_guard.sh` never gates on them.
fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_parallel_10k");
    g.sample_size(20);
    let n = 10_000u64;
    let mut idx = BitAddressIndex::with_shards(IndexConfig::new(vec![8, 8, 8]).unwrap(), 4);
    let mut r = CostReceipt::new();
    for i in 0..n {
        idx.insert(TupleKey(i as u32), &jas(i), &mut r);
    }
    // One batch of single-attribute wildcard probes (2^16 candidate
    // buckets each — the wide, slab-walking shape that parallelizes).
    let reqs: Vec<SearchRequest> = (0..64u64)
        .map(|i| {
            SearchRequest::new(
                AccessPattern::from_positions(&[0], 3).unwrap(),
                AttrVec::from_slice(&[i % 64, 0, 0]).unwrap(),
            )
        })
        .collect();
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("wildcard_batch_probe_threads", threads),
            &threads,
            |b, &threads| {
                let pool = WorkerPool::new(std::num::NonZeroUsize::new(threads).unwrap());
                let mut scratch = SearchScratch::new();
                b.iter(|| {
                    let mut receipt = CostReceipt::new();
                    let mut hits = 0usize;
                    idx.search_batch_with(
                        black_box(&reqs),
                        &mut scratch,
                        &mut receipt,
                        &pool,
                        |_, h| hits += h.len(),
                    );
                    black_box(hits)
                });
            },
        );
    }
    g.finish();
}

fn bench_migrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_migrate_10k");
    g.sample_size(20);
    g.bench_function("bitaddr_full_rebucket", |b| {
        b.iter_batched(
            || populated_bitaddr(10_000, vec![8, 8, 8]),
            |mut idx| {
                let mut r = CostReceipt::new();
                idx.migrate(IndexConfig::new(vec![4, 10, 10]).unwrap(), &mut r);
                black_box(r.moved)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_search,
    bench_parallel,
    bench_migrate
);
criterion_main!(benches);
