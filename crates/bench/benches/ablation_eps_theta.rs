//! `ABL-EPS-THETA` — sweep the compact methods' error rate ε: recording
//! throughput (compression frequency scales with ε) for CSRIA and CDIA.

use amri_core::assess::AssessorKind;
use amri_hh::CombineStrategy;
use amri_synth::PatternMixture;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mixture = PatternMixture::table_ii();
    let mut g = c.benchmark_group("ablation_eps");
    for eps in [0.05f64, 0.01, 0.001] {
        for (name, kind) in [
            ("csria", AssessorKind::Csria),
            ("cdia", AssessorKind::Cdia(CombineStrategy::HighestCount)),
        ] {
            g.bench_with_input(BenchmarkId::new(name, format!("{eps}")), &eps, |b, &eps| {
                b.iter(|| {
                    let mut a = kind.build(3, eps, 3);
                    let mut rng = StdRng::seed_from_u64(5);
                    for _ in 0..20_000 {
                        a.record(mixture.sample(&mut rng));
                    }
                    black_box(a.frequent(0.1))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
