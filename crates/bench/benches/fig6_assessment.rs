//! `EXP-F6-ASSESS` as a Criterion benchmark: a shortened quick-scale run
//! per assessment method (full figure regeneration lives in the
//! `fig6_assessment` binary).

use amri_core::assess::AssessorKind;
use amri_engine::{Executor, IndexingMode};
use amri_stream::VirtualDuration;
use amri_synth::scenario::{paper_scenario, Scale};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_assessment_mini");
    g.sample_size(10);
    for kind in AssessorKind::figure6_lineup() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut sc = paper_scenario(Scale::Quick, 42);
                    sc.engine.duration = VirtualDuration::from_secs(10);
                    let r = Executor::try_new(
                        &sc.query,
                        sc.workload(),
                        IndexingMode::Amri {
                            assessor: kind,
                            initial: None,
                        },
                        sc.engine.clone(),
                    )
                    .expect("valid engine configuration")
                    .run();
                    black_box(r.outputs)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
