//! `EXP-F6-HASH` as a Criterion benchmark: shortened quick-scale runs of
//! the access-module baseline at 1, 4 and 7 hash indices.

use amri_engine::{Executor, IndexingMode};
use amri_stream::VirtualDuration;
use amri_synth::scenario::{paper_scenario, Scale};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_hash_mini");
    g.sample_size(10);
    for k in [1usize, 4, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut sc = paper_scenario(Scale::Quick, 42);
                sc.engine.duration = VirtualDuration::from_secs(10);
                let r = Executor::try_new(
                    &sc.query,
                    sc.workload(),
                    IndexingMode::AdaptiveHash {
                        n_indices: k,
                        initial: None,
                    },
                    sc.engine.clone(),
                )
                .expect("valid engine configuration")
                .run();
                black_box(r.outputs)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
