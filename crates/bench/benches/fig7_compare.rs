//! `EXP-F7` as a Criterion benchmark: shortened quick-scale AMRI vs the
//! static bitmap vs a 7-index hash module.

use amri_core::assess::AssessorKind;
use amri_engine::{Executor, IndexingMode};
use amri_hh::CombineStrategy;
use amri_stream::VirtualDuration;
use amri_synth::scenario::{paper_scenario, Scale};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn run(mode: IndexingMode) -> u64 {
    let mut sc = paper_scenario(Scale::Quick, 42);
    sc.engine.duration = VirtualDuration::from_secs(10);
    Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
        .run()
        .outputs
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_mini");
    g.sample_size(10);
    g.bench_function("amri_cdia_highest", |b| {
        b.iter(|| {
            black_box(run(IndexingMode::Amri {
                assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
                initial: None,
            }))
        })
    });
    g.bench_function("static_bitmap", |b| {
        b.iter(|| black_box(run(IndexingMode::StaticBitmap { configs: None })))
    });
    g.bench_function("hash_7", |b| {
        b.iter(|| {
            black_box(run(IndexingMode::AdaptiveHash {
                n_indices: 7,
                initial: None,
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
