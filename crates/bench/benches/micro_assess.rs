//! Micro-benchmarks of the four assessment methods: statistics recording
//! throughput and final-results extraction, Table-II-shaped workload.

use amri_core::assess::AssessorKind;
use amri_synth::PatternMixture;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("assess_record");
    let mixture = PatternMixture::table_ii();
    for kind in AssessorKind::figure6_lineup() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                let mut a = kind.build(3, 0.001, 7);
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| {
                    a.record(black_box(mixture.sample(&mut rng)));
                });
            },
        );
    }
    g.finish();
}

fn bench_frequent(c: &mut Criterion) {
    let mut g = c.benchmark_group("assess_frequent");
    let mixture = PatternMixture::table_ii();
    for kind in AssessorKind::figure6_lineup() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                let mut a = kind.build(3, 0.001, 7);
                let mut rng = StdRng::seed_from_u64(3);
                for _ in 0..10_000 {
                    a.record(mixture.sample(&mut rng));
                }
                b.iter(|| black_box(a.frequent(black_box(0.1))));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_record, bench_frequent);
criterion_main!(benches);
