//! `EXP-T1-COST` — cost-model benchmarks: evaluating Eq. 1 and selecting
//! configurations (greedy vs exhaustive) across workload sizes.

use amri_core::selection::{select_config_exhaustive, select_config_greedy};
use amri_core::{ApStat, CostParams, IndexConfig, WorkloadProfile};
use amri_stream::AccessPattern;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn profile(width: usize) -> WorkloadProfile {
    let aps: Vec<ApStat> = AccessPattern::all(width)
        .filter(|p| !p.is_empty())
        .map(|pattern| ApStat {
            pattern,
            freq: 1.0 / ((1 << width) - 1) as f64,
        })
        .collect();
    WorkloadProfile::new(1000.0, 500.0, 30.0, aps)
}

fn bench_expected_cd(c: &mut Criterion) {
    let mut g = c.benchmark_group("cost_expected_cd");
    for width in [3usize, 5, 8] {
        let prof = profile(width);
        let ic = IndexConfig::even(width, 24).unwrap();
        let params = CostParams::default();
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| black_box(params.expected_cd(black_box(&ic), black_box(&prof))))
        });
    }
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("cost_selection");
    let params = CostParams::default();
    for bits in [8u32, 16, 64] {
        let prof = profile(3);
        g.bench_with_input(BenchmarkId::new("greedy_w3", bits), &bits, |b, &bits| {
            b.iter(|| black_box(select_config_greedy(bits, 3, &prof, &params)))
        });
    }
    let prof = profile(3);
    g.bench_function("exhaustive_w3_b8", |b| {
        b.iter(|| black_box(select_config_exhaustive(8, 3, &prof, &params)))
    });
    let prof8 = profile(8);
    g.bench_function("greedy_w8_b64", |b| {
        b.iter(|| black_box(select_config_greedy(64, 8, &prof8, &params)))
    });
    g.finish();
}

criterion_group!(benches, bench_expected_cd, bench_selection);
criterion_main!(benches);
