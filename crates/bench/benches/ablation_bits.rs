//! `ABL-BITS` — sweep the index-configuration width `B`: search cost for
//! narrow (full-pattern) and wide (one-attribute) requests, plus insert
//! cost, as the §III trade-off predicts.

use amri_core::{BitAddressIndex, CostReceipt, IndexConfig, SearchScratch, StateIndex, TupleKey};
use amri_stream::{AccessPattern, AttrVec, SearchRequest};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn populated(total_bits: u32, n: u64) -> BitAddressIndex {
    let mut idx = BitAddressIndex::new(IndexConfig::even(3, total_bits).unwrap());
    let mut r = CostReceipt::new();
    for i in 0..n {
        idx.insert(
            TupleKey(i as u32),
            &AttrVec::from_slice(&[i % 512, i % 317, i % 129]).unwrap(),
            &mut r,
        );
    }
    idx
}

fn bench(c: &mut Criterion) {
    let n = 20_000u64;
    let exact = SearchRequest::new(
        AccessPattern::full(3),
        AttrVec::from_slice(&[100, 100, 100]).unwrap(),
    );
    let wide = SearchRequest::new(
        AccessPattern::from_positions(&[0], 3).unwrap(),
        AttrVec::from_slice(&[100, 0, 0]).unwrap(),
    );
    let mut g = c.benchmark_group("ablation_bits_search");
    for bits in [4u32, 8, 12, 16, 24, 48] {
        let idx = populated(bits, n);
        g.bench_with_input(BenchmarkId::new("exact", bits), &bits, |b, _| {
            let mut scratch = SearchScratch::new();
            b.iter(|| {
                let mut r = CostReceipt::new();
                black_box(idx.search_into(black_box(&exact), &mut scratch, &mut r))
            })
        });
        g.bench_with_input(BenchmarkId::new("one_attr", bits), &bits, |b, _| {
            let mut scratch = SearchScratch::new();
            b.iter(|| {
                let mut r = CostReceipt::new();
                black_box(idx.search_into(black_box(&wide), &mut scratch, &mut r))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
