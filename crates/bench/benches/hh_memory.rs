//! `EXP-MEM-BOUND` — heavy-hitter summaries: observation throughput of
//! every backend (the memory-bound *assertions* live in the property
//! tests; here we measure the time cost of staying compact).

use amri_hh::{
    CombineStrategy, ExactCounter, FrequencyEstimator, HhhConfig, HierarchicalHeavyHitters,
    LossyCounter, MisraGries, SpaceSaving,
};
use amri_stream::AccessPattern;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn skewed_stream(n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(17);
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.6 {
                rng.gen_range(0..4)
            } else {
                rng.gen_range(0..100_000)
            }
        })
        .collect()
}

fn bench_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("hh_observe_100k");
    g.sample_size(20);
    let stream = skewed_stream(100_000);
    g.bench_function("exact", |b| {
        b.iter(|| {
            let mut x = ExactCounter::new();
            for &v in &stream {
                x.observe(v);
            }
            black_box(x.entries())
        })
    });
    g.bench_function("lossy_eps_0.001", |b| {
        b.iter(|| {
            let mut x = LossyCounter::new(0.001);
            for &v in &stream {
                x.observe(v);
            }
            black_box(x.entries())
        })
    });
    g.bench_function("misra_gries_1000", |b| {
        b.iter(|| {
            let mut x = MisraGries::new(1000);
            for &v in &stream {
                x.observe(v);
            }
            black_box(x.entries())
        })
    });
    g.bench_function("space_saving_1000", |b| {
        b.iter(|| {
            let mut x = SpaceSaving::new(1000);
            for &v in &stream {
                x.observe(v);
            }
            black_box(x.entries())
        })
    });
    g.finish();
}

fn bench_hhh(c: &mut Criterion) {
    let mut g = c.benchmark_group("hhh_observe_100k");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(23);
    let stream: Vec<AccessPattern> = (0..100_000)
        .map(|_| AccessPattern::new(rng.gen_range(0..256), 8))
        .collect();
    for strategy in [CombineStrategy::Random, CombineStrategy::HighestCount] {
        g.bench_function(format!("{strategy:?}"), |b| {
            b.iter(|| {
                let mut h = HierarchicalHeavyHitters::new(
                    8,
                    HhhConfig {
                        epsilon: 0.001,
                        strategy,
                        seed: 3,
                    },
                );
                for &p in &stream {
                    h.observe(p);
                }
                black_box(h.entries())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_counters, bench_hhh);
criterion_main!(benches);
