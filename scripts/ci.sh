#!/usr/bin/env bash
# CI gate: format, lint, build, test. Everything runs offline against the
# vendored shims in shims/ — no network, no registry fetches.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

# Fault-injection smoke matrix: every fault kind x every shedding policy at
# quick scale, plus same-seed replay checks. Survives in a few seconds and
# exits non-zero listing any cell that died or diverged.
echo "==> fault-injection smoke matrix"
cargo run --release -q -p amri-bench --bin fault_matrix

# Determinism under parallelism: the same quick-scale sweep run twice at
# --threads 4 must emit byte-identical summary CSVs. A --threads 4 sweep
# now drives the whole parallel pipeline — staged per-shard ingest
# (insert/expire), sharded probe, and per-shard migration all fan out
# over the worker pool — so thread scheduling must be unobservable in
# every column, including the maintenance-tick (ingest_ns/migrate_ns)
# accounting, and the fault matrix's replay checks must stay green with
# the pool engaged.
echo "==> determinism under parallelism (--threads 4)"
PAR_A="$(mktemp -d)"
PAR_B="$(mktemp -d)"
SEQ_DIR="$(mktemp -d)"
trap 'rm -rf "$PAR_A" "$PAR_B" "$SEQ_DIR"' EXIT
(cd "$PAR_A" && "$OLDPWD"/target/release/all_experiments --quick --threads 4 > /dev/null)
(cd "$PAR_B" && "$OLDPWD"/target/release/all_experiments --quick --threads 4 > /dev/null)
for csv in fig6_assessment_summary fig6_hash_summary fig7_compare_summary; do
    diff "$PAR_A/results/${csv}.csv" "$PAR_B/results/${csv}.csv" \
        || { echo "parallel run diverged: ${csv}"; exit 1; }
done
echo "summary CSVs identical across repeated --threads 4 sweeps"

# Cross-thread-count equivalence: a --threads 1 sweep must match the
# --threads 4 one byte-for-byte — the tentpole invariant (parallel ingest,
# probe and migration are pure implementation detail). Series CSVs carry
# no thread count and must be identical verbatim; summary CSVs record the
# thread count in column 15, which is blanked on both sides before the
# diff so every *measured* column (outputs, peaks, retunes, faults,
# ingest_ns/migrate_ns/migrate_stalls) must agree exactly.
echo "==> ingest-parallel equivalence (--threads 1 vs --threads 4)"
(cd "$SEQ_DIR" && "$OLDPWD"/target/release/all_experiments --quick --threads 1 > /dev/null)
for csv in fig6_assessment fig6_hash fig7_compare; do
    diff "$SEQ_DIR/results/${csv}.csv" "$PAR_A/results/${csv}.csv" \
        || { echo "thread counts diverged: ${csv}"; exit 1; }
done
for csv in fig6_assessment_summary fig6_hash_summary fig7_compare_summary; do
    diff <(awk -F, -v OFS=, '{$15=""}1' "$SEQ_DIR/results/${csv}.csv") \
         <(awk -F, -v OFS=, '{$15=""}1' "$PAR_A/results/${csv}.csv") \
        || { echo "thread counts diverged: ${csv}"; exit 1; }
done
echo "--threads 1 and --threads 4 sweeps byte-identical (modulo the recorded thread count)"

echo "==> fault-injection replay at --threads 4 (staged parallel ingest engaged)"
cargo run --release -q -p amri-bench --bin fault_matrix -- --threads 4

# Crash-recovery replay: every indexing mode is crashed at a mid-run step,
# resumed from its latest snapshot, and the resumed summary CSV must be
# byte-identical to the uninterrupted baseline's — sequentially and with
# the worker pool engaged. The bin itself exits non-zero on divergence;
# the explicit diff below keeps the byte-identity claim visible in CI.
for threads in 1 4; do
    echo "==> crash-resume replay (--threads ${threads})"
    CRASH_OUT="$(mktemp -d)"
    cargo run --release -q -p amri-bench --bin crash_matrix -- \
        --quick --threads "${threads}" --out "${CRASH_OUT}"
    diff "${CRASH_OUT}/baseline_summary.csv" "${CRASH_OUT}/resumed_summary.csv" \
        || { echo "crash-resume summary diverged at --threads ${threads}"; exit 1; }
    echo "resumed summary byte-identical at --threads ${threads}"
    rm -rf "${CRASH_OUT}"
done

# Torn-snapshot fallback: the latest snapshot is corrupted in flight; the
# checksum must reject it and recovery must fall back to the previous good
# image, still landing byte-identical.
echo "==> torn-snapshot fallback"
CRASH_OUT="$(mktemp -d)"
cargo run --release -q -p amri-bench --bin crash_matrix -- \
    --quick --torn --out "${CRASH_OUT}"
diff "${CRASH_OUT}/baseline_summary.csv" "${CRASH_OUT}/resumed_summary.csv" \
    || { echo "torn-snapshot fallback diverged"; exit 1; }
echo "torn latest snapshot skipped, fallback byte-identical"
rm -rf "${CRASH_OUT}"

# Spill-tier acceptance: every indexing mode is run under a budget that
# kills the all-RAM engine; the same budget with a disk spill tier must
# complete with the unconstrained outputs and output digest (the identity
# storage profile charges no virtual time), crash+resume with the tier
# active must be byte-identical, and the seeded disk-fault storm (torn
# writes, double read failures, latency spikes) must end typed —
# Completed or Degraded matching the loss counters, never a panic — and
# replay bit-for-bit. The bin exits non-zero on any violation; the diffs
# below additionally pin that every measured column of the spilled
# summary — spill counters included — is byte-identical across thread
# counts (column 15 is the recorded thread count, blanked as above).
echo "==> spill-tier matrix (OOM budget survives via disk, identical across threads)"
SPILL_A="$(mktemp -d)"
SPILL_B="$(mktemp -d)"
cargo run --release -q -p amri-bench --bin spill_matrix -- \
    --quick --threads 1 --spill-cache 262144 --out "${SPILL_A}"
cargo run --release -q -p amri-bench --bin spill_matrix -- \
    --quick --threads 4 --spill-cache 262144 --out "${SPILL_B}"
diff <(awk -F, -v OFS=, '{$15=""}1' "${SPILL_A}/spilled_summary.csv") \
     <(awk -F, -v OFS=, '{$15=""}1' "${SPILL_B}/spilled_summary.csv") \
    || { echo "spilled summary diverged across thread counts"; exit 1; }
diff "${SPILL_A}/spill_identity.csv" "${SPILL_B}/spill_identity.csv" \
    || { echo "spill identity report diverged across thread counts"; exit 1; }
# The spill fast path (decoded-block cache + coalesced reads + readahead)
# must be a pure acceleration: the cache-enabled cell's summary, with the
# five cache-counter columns (27-31) cut, must be byte-identical to the
# cacheless cell's at both thread counts — and byte-identical across
# thread counts with the cache counters *included*.
for d in "${SPILL_A}" "${SPILL_B}"; do
    diff <(cut -d, -f1-26,32 "${d}/spilled_summary.csv") \
         <(cut -d, -f1-26,32 "${d}/spilled_cached_summary.csv") \
        || { echo "cache-enabled spill run diverged from the cacheless one"; exit 1; }
done
diff <(awk -F, -v OFS=, '{$15=""}1' "${SPILL_A}/spilled_cached_summary.csv") \
     <(awk -F, -v OFS=, '{$15=""}1' "${SPILL_B}/spilled_cached_summary.csv") \
    || { echo "cached spilled summary diverged across thread counts"; exit 1; }
echo "spill matrix green: beyond-RAM windows, byte-identical across threads 1 and 4, cache on or off"
rm -rf "${SPILL_A}" "${SPILL_B}"

# Safe-tuning duel: paper vs bandit vs static on both drift schedules.
# The retune decisions — including the bandit's arm statistics, backoff
# timers and RNG draws — all happen on the sequential tune path, so the
# same-seed duel must emit a byte-identical summary CSV (regret/thrash
# columns included) at --threads 1 and --threads 4; column 15 is the
# recorded thread count, blanked as above.
echo "==> tuner duel replay (--threads 1 vs --threads 4)"
DUEL_A="$(mktemp -d)"
DUEL_B="$(mktemp -d)"
(cd "$DUEL_A" && "$OLDPWD"/target/release/tuner_duel --quick --threads 1 > /dev/null)
(cd "$DUEL_B" && "$OLDPWD"/target/release/tuner_duel --quick --threads 4 > /dev/null)
diff <(awk -F, -v OFS=, '{$15=""}1' "$DUEL_A/results/tuner_duel_summary.csv") \
     <(awk -F, -v OFS=, '{$15=""}1' "$DUEL_B/results/tuner_duel_summary.csv") \
    || { echo "tuner duel diverged across thread counts"; exit 1; }
echo "tuner duel byte-identical across threads 1 and 4"
rm -rf "$DUEL_A" "$DUEL_B"

# Bandit tuner state through crash+resume: the arm statistics, pending
# retune, backoff level and RNG stream all ride the snapshot, so a
# crash-at-k + resume under --tuner bandit must stay byte-identical —
# including the amri-governed-faulted cell, where the snapshot also
# carries an active fault plan.
echo "==> crash-resume replay (--tuner bandit)"
CRASH_OUT="$(mktemp -d)"
cargo run --release -q -p amri-bench --bin crash_matrix -- \
    --quick --tuner bandit --out "${CRASH_OUT}"
diff "${CRASH_OUT}/baseline_summary.csv" "${CRASH_OUT}/resumed_summary.csv" \
    || { echo "bandit crash-resume summary diverged"; exit 1; }
echo "bandit tuner state byte-identical through crash+resume"
rm -rf "${CRASH_OUT}"

# Fleet-sweep smoke: the same four-cell sweep (mixed indexing modes, one
# tenant forced through the admission queue) run three ways — hosted in
# one TenantHost, solo with no host anywhere, and hosted with a mid-sweep
# suspend-to-disk / resume-in-a-fresh-host migration. All three merged
# summary CSVs must be byte-identical: co-residency and suspend/resume
# are invisible in every measured column.
echo "==> fleet-sweep smoke (4 tenants, mixed modes)"
FLEET_DIR="$(mktemp -d)"
(cd "$FLEET_DIR" && "$OLDPWD"/target/release/fleet_sweep > /dev/null)
(cd "$FLEET_DIR" && "$OLDPWD"/target/release/fleet_sweep --solo > /dev/null)
(cd "$FLEET_DIR" && "$OLDPWD"/target/release/fleet_sweep --migrate > /dev/null)
diff "$FLEET_DIR/results/fleet_summary.csv" "$FLEET_DIR/results/fleet_solo_summary.csv" \
    || { echo "hosted fleet diverged from solo runs"; exit 1; }
diff "$FLEET_DIR/results/fleet_summary.csv" "$FLEET_DIR/results/fleet_migrated_summary.csv" \
    || { echo "migrated fleet diverged from uninterrupted hosted run"; exit 1; }
echo "hosted, solo and migrated fleet summaries byte-identical"
rm -rf "$FLEET_DIR"

echo "CI green."
