#!/usr/bin/env bash
# CI gate: format, lint, build, test. Everything runs offline against the
# vendored shims in shims/ — no network, no registry fetches.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

# Fault-injection smoke matrix: every fault kind x every shedding policy at
# quick scale, plus same-seed replay checks. Survives in a few seconds and
# exits non-zero listing any cell that died or diverged.
echo "==> fault-injection smoke matrix"
cargo run --release -q -p amri-bench --bin fault_matrix

echo "CI green."
