#!/usr/bin/env bash
# Regenerate BENCH_spill.json: measure the spill-tier read fast path —
# cold verified block read (cache miss), warm decoded-block cache hit,
# coalesced 64-hit batch vs 64 independent reads, and expiry-order
# readahead — plus the PR-8 baseline cold materialize, and record
# medians, derived speedups and the environment.
#
# Like bench_parallel.sh, each median is the *minimum* over BENCH_RUNS
# runs (noise only inflates a run). The two acceptance bars are recorded
# in the JSON: a warm hit must beat the cold materialize by >= 5x and the
# coalesced 64-hit batch must beat 64 independent reads by >= 3x.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_RUNS="${BENCH_RUNS:-3}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# `spill` is a substring match, so one invocation covers the PR-8 group
# (spill_4k: round trip + cold materialize) and the fast-path group
# (spill_cached_4k: cold read, warm hit, batch, independent, readahead).
echo "==> cargo bench -p amri-bench --bench micro_index -- spill (best of ${BENCH_RUNS})"
for run in $(seq "$BENCH_RUNS"); do
    echo "--- run ${run}/${BENCH_RUNS}"
    cargo bench -p amri-bench --bench micro_index -- spill 2>&1 \
        | grep 'median_ns=' | tee -a "$OUT"
done

median_for() {
    awk -v k="$1" '$1 == k {
        sub(/.*median_ns=/, "")
        if (best == "" || $0 + 0 < best + 0) best = $0 + 0
    } END { if (best == "") exit 1; print best }' "$OUT"
}

MAT="$(median_for spill_4k/materialize_spilled_hit)"
COLD="$(median_for spill_cached_4k/cold_read)"
WARM="$(median_for spill_cached_4k/warm_hit)"
BATCH="$(median_for spill_cached_4k/coalesced_batch_64)"
INDEP="$(median_for spill_cached_4k/independent_64)"
READAHEAD="$(median_for spill_cached_4k/readahead_drain_2)"
CORES="$(nproc)"

jq -n \
    --argjson mat "$MAT" --argjson cold "$COLD" --argjson warm "$WARM" \
    --argjson batch "$BATCH" --argjson indep "$INDEP" \
    --argjson readahead "$READAHEAD" \
    --argjson cores "$CORES" --argjson runs "$BENCH_RUNS" \
    --arg kernel "$(uname -sr)" --arg arch "$(uname -m)" '
{
  description: "Spill-tier read fast path: all benches over the identical 4k-tuple ScanIndex StateStore with half its window spilled to the checksummed block store in 256-tuple blocks. spill_4k/materialize_spilled_hit is the PR-8 baseline (cacheless cold materialize: one verified device read + decode + entry scan). spill_cached_4k/cold_read is the same read through an empty 1 MiB decoded-block cache (miss + admission); warm_hit re-reads a cached block (no file I/O, no checksum, no decode); coalesced_batch_64 materializes 64 stub hits of one probe batch grouped by block (one verified read serves all 64); independent_64 is the baseline it replaces (64 cacheless reads, one per hit); readahead_drain_2 plans and drains a 2-block expiry-order prefetch into the cache.",
  regenerate: "scripts/bench_spill.sh  # best-of-N medians; BENCH_RUNS to change N",
  environment: {
    cores: $cores,
    bench_runs: $runs,
    kernel: $kernel,
    arch: $arch,
    profile: "bench (lto=thin, codegen-units=1)",
    tuples: 4000,
    payload_bytes: 64,
    spill_block_tuples: 256,
    cache_bytes: 1048576,
    batch_hits: 64
  },
  micro_index_median_ns: {
    "spill_4k/materialize_spilled_hit": $mat,
    "spill_cached_4k/cold_read": $cold,
    "spill_cached_4k/warm_hit": $warm,
    "spill_cached_4k/coalesced_batch_64": $batch,
    "spill_cached_4k/independent_64": $indep,
    "spill_cached_4k/readahead_drain_2": $readahead
  },
  speedup: {
    warm_hit_vs_cold_materialize: (($mat / $warm * 100 | round) / 100),
    warm_hit_vs_cold_read: (($cold / $warm * 100 | round) / 100),
    coalesced_batch_vs_64_independent: (($indep / $batch * 100 | round) / 100)
  },
  acceptance: {
    warm_hit_vs_cold_materialize_min: 5.0,
    coalesced_batch_vs_64_independent_min: 3.0,
    pass: (($mat / $warm) >= 5.0 and ($indep / $batch) >= 3.0)
  }
}' > BENCH_spill.json

echo "==> wrote BENCH_spill.json"
jq '{medians: .micro_index_median_ns, speedup: .speedup, pass: .acceptance.pass}' BENCH_spill.json
if [[ "$(jq -r '.acceptance.pass' BENCH_spill.json)" != "true" ]]; then
    echo "acceptance bars not met (warm >= 5x cold materialize, batch >= 3x independent)" >&2
    exit 1
fi
