#!/usr/bin/env bash
# Regenerate BENCH_parallel.json: measure the sharded batch-probe bench
# at 1, 2 and 4 worker threads and record medians, derived speedups and
# the environment the numbers were taken on.
#
# Like bench_guard.sh, each median is the *minimum* over BENCH_RUNS runs
# (noise only inflates a run). Unlike bench_guard.sh this script is a
# recorder, not a gate: wall-clock scaling depends on how many cores the
# host actually has, so the honest artifact is medians + core count, and
# readers judge the speedup against the recorded environment. On a
# single-core host the three thread counts are expected to tie (the
# deterministic merge makes extra threads pure overhead there); >= 2x at
# 4 threads is only reachable with >= 4 cores.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_RUNS="${BENCH_RUNS:-3}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

echo "==> cargo bench -p amri-bench --bench micro_index -- index_parallel_10k (best of ${BENCH_RUNS})"
for run in $(seq "$BENCH_RUNS"); do
    echo "--- run ${run}/${BENCH_RUNS}"
    cargo bench -p amri-bench --bench micro_index -- index_parallel_10k 2>&1 \
        | grep 'median_ns=' | tee -a "$OUT"
done

median_for() {
    awk -v k="index_parallel_10k/wildcard_batch_probe_threads/$1" '$1 == k {
        sub(/.*median_ns=/, "")
        if (best == "" || $0 + 0 < best + 0) best = $0 + 0
    } END { if (best == "") exit 1; print best }' "$OUT"
}

T1="$(median_for 1)"
T2="$(median_for 2)"
T4="$(median_for 4)"
CORES="$(nproc)"

jq -n \
    --argjson t1 "$T1" --argjson t2 "$T2" --argjson t4 "$T4" \
    --argjson cores "$CORES" --argjson runs "$BENCH_RUNS" \
    --arg kernel "$(uname -sr)" --arg arch "$(uname -m)" '
{
  description: "Scaling evidence for the sharded multicore tentpole: the index_parallel_10k/wildcard_batch_probe_threads bench probes one 10k-entry, 4-shard BitAddressIndex with a 64-request single-attribute-wildcard batch (2^16 candidate buckets per request) through the engine WorkerPool at 1, 2 and 4 threads. The index, shard count and batch are identical across thread counts and the deterministic shard-then-slot merge makes the results byte-identical, so the ids differ only in executor parallelism.",
  regenerate: "scripts/bench_parallel.sh  # best-of-N medians; BENCH_RUNS to change N",
  environment: {
    cores: $cores,
    bench_runs: $runs,
    kernel: $kernel,
    arch: $arch,
    profile: "bench (lto=thin, codegen-units=1)",
    entries_per_index: 10000,
    shards: 4,
    batch_requests: 64
  },
  micro_index_median_ns: {
    "index_parallel_10k/wildcard_batch_probe_threads/1": $t1,
    "index_parallel_10k/wildcard_batch_probe_threads/2": $t2,
    "index_parallel_10k/wildcard_batch_probe_threads/4": $t4
  },
  speedup_vs_1_thread: {
    threads_2: (($t1 / $t2 * 100 | round) / 100),
    threads_4: (($t1 / $t4 * 100 | round) / 100)
  },
  note: (
    if $cores >= 4 then
      "Measured on a \($cores)-core host; the >= 2.0x-at-4-threads target applies."
    else
      "Measured on a \($cores)-core host: wall-clock speedup from threads is capped at \($cores)x here regardless of implementation, so the three thread counts tying (speedup ~1.0x) is the expected — and desirable — result. It demonstrates the correctness half of the scaling claim that IS measurable on one core: the sharded parallel path (shard planning, cross-thread dispatch, deterministic merge) costs no more than the sequential path, i.e. parallelism is overhead-free to turn on. The >= 2.0x-at-4-threads throughput target requires re-running scripts/bench_parallel.sh on a host with >= 4 cores; the per-shard work units this bench dispatches are independent full bucket-range walks with no shared mutable state, so the parallel fraction of the probe is ~1.0."
    end
  )
}' > BENCH_parallel.json

echo "==> wrote BENCH_parallel.json"
jq '{cores: .environment.cores, medians: .micro_index_median_ns, speedup: .speedup_vs_1_thread}' BENCH_parallel.json
