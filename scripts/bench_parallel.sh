#!/usr/bin/env bash
# Regenerate BENCH_parallel.json: measure the three parallel-path benches
# — sharded batch probe, staged parallel ingest (insert + expire), and
# sharded migration — at 1, 2 and 4 worker threads, and record medians,
# derived speedups and the environment the numbers were taken on.
#
# Like bench_guard.sh, each median is the *minimum* over BENCH_RUNS runs
# (noise only inflates a run). Unlike bench_guard.sh this script is a
# recorder, not a gate: wall-clock scaling depends on how many cores the
# host actually has, so the honest artifact is medians + core count, and
# readers judge the speedup against the recorded environment. On a
# single-core host the three thread counts are expected to tie (the
# deterministic merge makes extra threads pure overhead there); >= 2x at
# 4 threads is only reachable with >= 4 cores.
set -euo pipefail
cd "$(dirname "$0")/.."

FORCE=0
for arg in "$@"; do
    case "$arg" in
        --force) FORCE=1 ;;
        *) echo "usage: scripts/bench_parallel.sh [--force]" >&2; exit 2 ;;
    esac
done

# On a <4-core host the thread counts tie by construction, so regenerating
# would silently replace committed multi-core scaling evidence with tied
# medians. Refuse unless the caller explicitly says that's what they want.
if [[ "$(nproc)" -lt 4 && -f BENCH_parallel.json && "$FORCE" -ne 1 ]]; then
    echo "refusing to overwrite BENCH_parallel.json: this host has $(nproc) core(s)," >&2
    echo "so the recorded >=4-core speedups would be replaced by tied single-core" >&2
    echo "medians. Re-run on a >=4-core host, or pass --force to record this" >&2
    echo "environment anyway (the JSON records the core count either way)." >&2
    exit 1
fi

BENCH_RUNS="${BENCH_RUNS:-3}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# The filter `parallel_10k` is a substring match, so one invocation covers
# index_parallel_10k (probe), ingest_parallel_10k (staged insert+expire)
# and migrate_parallel_10k (sharded rebucket).
echo "==> cargo bench -p amri-bench --bench micro_index -- parallel_10k (best of ${BENCH_RUNS})"
for run in $(seq "$BENCH_RUNS"); do
    echo "--- run ${run}/${BENCH_RUNS}"
    cargo bench -p amri-bench --bench micro_index -- parallel_10k 2>&1 \
        | grep 'median_ns=' | tee -a "$OUT"
done

median_for() {
    awk -v k="$1" '$1 == k {
        sub(/.*median_ns=/, "")
        if (best == "" || $0 + 0 < best + 0) best = $0 + 0
    } END { if (best == "") exit 1; print best }' "$OUT"
}

P1="$(median_for index_parallel_10k/wildcard_batch_probe_threads/1)"
P2="$(median_for index_parallel_10k/wildcard_batch_probe_threads/2)"
P4="$(median_for index_parallel_10k/wildcard_batch_probe_threads/4)"
I1="$(median_for ingest_parallel_10k/insert_expire_threads/1)"
I2="$(median_for ingest_parallel_10k/insert_expire_threads/2)"
I4="$(median_for ingest_parallel_10k/insert_expire_threads/4)"
M1="$(median_for migrate_parallel_10k/bitaddr_sharded_rebucket_threads/1)"
M2="$(median_for migrate_parallel_10k/bitaddr_sharded_rebucket_threads/2)"
M4="$(median_for migrate_parallel_10k/bitaddr_sharded_rebucket_threads/4)"
CORES="$(nproc)"
# A <4-core recording only happens under --force (the guard above exits
# otherwise). Stamp it explicitly so downstream readers of the JSON can't
# mistake a tie-by-physics single-core run for a scaling regression.
DEGRADED=false
if [[ "$CORES" -lt 4 ]]; then DEGRADED=true; fi

jq -n \
    --argjson p1 "$P1" --argjson p2 "$P2" --argjson p4 "$P4" \
    --argjson i1 "$I1" --argjson i2 "$I2" --argjson i4 "$I4" \
    --argjson m1 "$M1" --argjson m2 "$M2" --argjson m4 "$M4" \
    --argjson cores "$CORES" --argjson runs "$BENCH_RUNS" \
    --argjson degraded "$DEGRADED" \
    --arg kernel "$(uname -sr)" --arg arch "$(uname -m)" '
{
  description: "Scaling evidence for the multicore tentpole, full pipeline: three benches over the identical 10k-entry 4-shard BitAddressIndex through the engine WorkerPool at 1, 2 and 4 threads. index_parallel_10k/wildcard_batch_probe_threads probes a 64-request single-attribute-wildcard batch (2^16 candidate buckets per request); ingest_parallel_10k/insert_expire_threads runs the staged write path (10k inserts in 256-tuple bursts, each burst applied per shard through the pool, then one staged whole-window expiry); migrate_parallel_10k/bitaddr_sharded_rebucket_threads reconfigures [8,8,8] -> [4,10,10] via the shard-crossing gather+redistribute protocol. Index, shard count and inputs are identical across thread counts and every result is byte-identical by construction, so the ids differ only in executor parallelism.",
  regenerate: "scripts/bench_parallel.sh  # best-of-N medians; BENCH_RUNS to change N",
  environment: {
    cores: $cores,
    degraded_environment: $degraded,
    bench_runs: $runs,
    kernel: $kernel,
    arch: $arch,
    profile: "bench (lto=thin, codegen-units=1)",
    entries_per_index: 10000,
    shards: 4,
    batch_requests: 64,
    ingest_burst: 256
  },
  micro_index_median_ns: {
    "index_parallel_10k/wildcard_batch_probe_threads/1": $p1,
    "index_parallel_10k/wildcard_batch_probe_threads/2": $p2,
    "index_parallel_10k/wildcard_batch_probe_threads/4": $p4,
    "ingest_parallel_10k/insert_expire_threads/1": $i1,
    "ingest_parallel_10k/insert_expire_threads/2": $i2,
    "ingest_parallel_10k/insert_expire_threads/4": $i4,
    "migrate_parallel_10k/bitaddr_sharded_rebucket_threads/1": $m1,
    "migrate_parallel_10k/bitaddr_sharded_rebucket_threads/2": $m2,
    "migrate_parallel_10k/bitaddr_sharded_rebucket_threads/4": $m4
  },
  speedup_vs_1_thread: {
    probe:   { threads_2: (($p1 / $p2 * 100 | round) / 100), threads_4: (($p1 / $p4 * 100 | round) / 100) },
    ingest:  { threads_2: (($i1 / $i2 * 100 | round) / 100), threads_4: (($i1 / $i4 * 100 | round) / 100) },
    migrate: { threads_2: (($m1 / $m2 * 100 | round) / 100), threads_4: (($m1 / $m4 * 100 | round) / 100) }
  },
  note: (
    if $cores >= 4 then
      "Measured on a \($cores)-core host; the >= 2.0x-at-4-threads target applies to the probe and migrate benches (parallel fraction ~1.0). Staged ingest keeps its arena/window half sequential by design, so its ceiling is set by the index-linking share of the write path."
    else
      "Measured on a \($cores)-core host: wall-clock speedup from threads is capped at \($cores)x here regardless of implementation, so the three thread counts tying (speedup ~1.0x) is the expected — and desirable — result. It demonstrates the correctness half of the scaling claim that IS measurable on one core: the sharded parallel paths (shard planning, staged-op replay, cross-thread dispatch, deterministic merge) cost no more than the sequential paths, i.e. parallelism is overhead-free to turn on. The >= 2.0x-at-4-threads throughput target requires re-running scripts/bench_parallel.sh on a host with >= 4 cores; the per-shard work units these benches dispatch (bucket-range walks, staged-op lanes, shard rebuckets) are independent with no shared mutable state, so the parallel fraction of probe and migrate is ~1.0, while staged ingest is bounded by its sequential arena/window half."
    end
  )
}' > BENCH_parallel.json

echo "==> wrote BENCH_parallel.json"
jq '{cores: .environment.cores, degraded: .environment.degraded_environment, medians: .micro_index_median_ns, speedup: .speedup_vs_1_thread}' BENCH_parallel.json
