#!/usr/bin/env bash
# Bench regression guard: rerun the micro-index Criterion bench and fail
# if any median regresses more than THRESHOLD_PCT (default 15%) against
# the recorded "arena" baselines in BENCH_index.json.
#
# Single medians still jitter ±30% on a busy single-core box (the
# nanosecond-scale benches especially), so the guard takes the *minimum*
# median over BENCH_RUNS runs (default 3) per bench id: noise only ever
# inflates a run, so the minimum is the faithful estimate, and a real
# regression shows up in every run.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD_PCT="${THRESHOLD_PCT:-15}"
BENCH_RUNS="${BENCH_RUNS:-3}"
BASELINE="BENCH_index.json"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

echo "==> cargo bench -p amri-bench --bench micro_index (best of ${BENCH_RUNS} runs, threshold +${THRESHOLD_PCT}%)"
for run in $(seq "$BENCH_RUNS"); do
    echo "--- run ${run}/${BENCH_RUNS}"
    cargo bench -p amri-bench --bench micro_index 2>&1 | grep 'median_ns=' | tee -a "$OUT"
done

fail=0
while IFS=$'\t' read -r key base; do
    now="$(awk -v k="$key" '$1 == k {
        sub(/.*median_ns=/, "")
        if (best == "" || $0 + 0 < best + 0) best = $0 + 0
    } END { if (best != "") print best }' "$OUT")"
    if [ -z "$now" ]; then
        echo "MISSING   $key (baseline ${base} ns; bench id absent from output)"
        fail=1
        continue
    fi
    verdict="$(awk -v now="$now" -v base="$base" -v thr="$THRESHOLD_PCT" 'BEGIN {
        pct = (now - base) / base * 100.0
        printf "%+7.1f%%  now=%.1f ns  baseline=%.1f ns", pct, now, base
        exit (pct > thr) ? 1 : 0
    }')" && ok=1 || ok=0
    if [ "$ok" = 1 ]; then
        echo "OK        $key  $verdict"
    else
        echo "REGRESSED $key  $verdict  (limit +${THRESHOLD_PCT}%)"
        fail=1
    fi
done < <(jq -r '.micro_index_median_ns | to_entries[]
                | select(.value.arena != null)
                | [.key, (.value.arena | tostring)] | @tsv' "$BASELINE")

if [ "$fail" != 0 ]; then
    echo "bench guard FAILED: median regression beyond ${THRESHOLD_PCT}% (or missing bench)"
    exit 1
fi
echo "bench guard green."
