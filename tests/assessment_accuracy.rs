//! Cross-crate accuracy guarantees of the compact assessment methods,
//! exercised over drifting pattern workloads (the §IV claims, end to end).

use amri_core::assess::{Assessor, AssessorKind};
use amri_hh::CombineStrategy;
use amri_stream::AccessPattern;
use amri_synth::{PatternMixture, PatternWorkload};

fn drifting(seed: u64) -> PatternWorkload {
    let ap = |m: u32| AccessPattern::new(m, 3);
    PatternWorkload::new(
        vec![
            PatternMixture::table_ii(),
            PatternMixture::new(vec![(ap(0b100), 0.5), (ap(0b110), 0.3), (ap(0b111), 0.2)]),
            PatternMixture::new(vec![(ap(0b001), 0.25), (ap(0b011), 0.35), (ap(0b111), 0.4)]),
        ],
        4000,
        seed,
    )
}

fn drive(kind: AssessorKind, n: usize, seed: u64) -> Box<dyn Assessor> {
    let mut a = kind.build(3, 0.005, seed);
    let mut w = drifting(seed);
    for _ in 0..n {
        a.record(w.next_pattern());
    }
    a
}

#[test]
fn csria_reports_a_subset_of_sria_with_epsilon_slack() {
    // Lossy counting may only add patterns whose true frequency is within ε
    // of θ; everything clearly frequent per SRIA must also be in CSRIA.
    let theta = 0.1;
    let eps = 0.005;
    for seed in [1, 7, 99] {
        let sria = drive(AssessorKind::Sria, 12_000, seed);
        let csria = drive(AssessorKind::Csria, 12_000, seed);
        let sria_set: Vec<u32> = sria.frequent(theta).iter().map(|(p, _)| p.mask()).collect();
        let csria_set: Vec<u32> = csria
            .frequent(theta)
            .iter()
            .map(|(p, _)| p.mask())
            .collect();
        // No false negatives w.r.t. clearly-frequent patterns.
        for (p, f) in sria.frequent(theta + eps) {
            assert!(
                csria_set.contains(&p.mask()),
                "seed {seed}: CSRIA lost {p} at {f}"
            );
        }
        // No pattern below θ − ε (checked against SRIA's exact count).
        for m in &csria_set {
            let exact = sria
                .frequent(0.0)
                .iter()
                .find(|(p, _)| p.mask() == *m)
                .map(|&(_, f)| f)
                .unwrap_or(0.0);
            assert!(
                exact >= theta - 2.0 * eps,
                "seed {seed}: CSRIA reported {m:#b} with true freq {exact}"
            );
        }
        let _ = sria_set;
    }
}

#[test]
fn cdia_covers_every_sria_frequent_pattern() {
    let theta = 0.1;
    for strategy in [CombineStrategy::Random, CombineStrategy::HighestCount] {
        for seed in [3, 11] {
            let sria = drive(AssessorKind::Sria, 12_000, seed);
            let cdia = drive(AssessorKind::Cdia(strategy), 12_000, seed);
            let cdia_frequent = cdia.frequent(theta);
            for (p, f) in sria.frequent(theta + 0.01) {
                let covered = cdia_frequent.iter().any(|(q, _)| q.benefits(p));
                assert!(
                    covered,
                    "{strategy:?} seed {seed}: {p} ({f:.3}) uncovered by {cdia_frequent:?}"
                );
            }
        }
    }
}

#[test]
fn compact_methods_stay_within_claimed_memory() {
    // Over a long drifting stream the compact tables stay near the lattice
    // size while the exact tables fill it completely.
    let n = 50_000;
    let sria = drive(AssessorKind::Sria, n, 5);
    let csria = drive(AssessorKind::Csria, n, 5);
    let cdia = drive(AssessorKind::Cdia(CombineStrategy::HighestCount), n, 5);
    assert_eq!(sria.peak_entries(), 7, "all seven patterns occur");
    assert!(csria.peak_entries() <= 7);
    assert!(cdia.peak_entries() <= 8);
    // Width-3 lattices are small; the bound claims matter at width 8.
    let mut wide = AssessorKind::Cdia(CombineStrategy::HighestCount).build(8, 0.01, 5);
    let mut wide_sria = AssessorKind::Sria.build(8, 0.01, 5);
    let mut w = PatternWorkload::new(
        vec![PatternMixture::new(
            (1u32..256)
                .map(|m| (AccessPattern::new(m, 8), if m == 255 { 100.0 } else { 0.2 }))
                .collect(),
        )],
        u64::MAX,
        5,
    );
    for _ in 0..60_000 {
        let p = w.next_pattern();
        wide.record(p);
        wide_sria.record(p);
    }
    assert!(
        wide.entries() < wide_sria.entries() / 3,
        "CDIA {} vs SRIA {}",
        wide.entries(),
        wide_sria.entries()
    );
}

#[test]
fn assessors_recover_after_reset_across_phases() {
    // The tuner resets statistics each decision; a reset mid-drift must not
    // poison subsequent windows.
    let mut a = AssessorKind::Cdia(CombineStrategy::HighestCount).build(3, 0.005, 9);
    let mut w = drifting(9);
    for _ in 0..4000 {
        a.record(w.next_pattern());
    }
    let before = a.frequent(0.1);
    assert!(!before.is_empty());
    a.reset();
    assert_eq!(a.n(), 0);
    // Next phase only.
    for _ in 0..4000 {
        a.record(w.next_pattern());
    }
    let after = a.frequent(0.1);
    // Phase 2 of `drifting` is dominated by <*,*,C>-family patterns.
    assert!(
        after.iter().any(|(p, _)| p.uses(2)),
        "fresh window must reflect the new phase: {after:?}"
    );
}
