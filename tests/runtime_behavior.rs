//! Behavioral tests for the runtime layer that the equivalence pin does
//! not cover directly: backlog sojourn stamps surviving the batch-queue
//! refactor, multi-grid-point sampling, router ordering invariants, and
//! the budget-exhaustion path driven through the explicit [`Pipeline`]
//! API (mirroring `baseline_oom.rs`, which goes through `Executor::run`).

use amri_core::assess::AssessorKind;
use amri_engine::{
    EngineConfig, Executor, IndexingMode, Job, MemoryBudget, MemoryReport, PolicyKind, Router,
    RunOutcome, StreamWorkload, ThroughputSeries,
};
use amri_hh::CombineStrategy;
use amri_stream::{
    AttrVec, JobQueue, PartialTuple, StreamId, StreamMask, Tuple, TupleId, VirtualDuration,
    VirtualTime,
};
use amri_synth::scenario::{paper_scenario, Scale};

fn job_at(secs: u64) -> Job {
    let t = Tuple::new(
        TupleId(secs),
        StreamId(0),
        VirtualTime::from_secs(secs),
        AttrVec::from_slice(&[secs]).unwrap(),
    );
    Job {
        pt: PartialTuple::from_base(&t),
        origin_ts: VirtualTime::from_secs(secs),
        enqueued: VirtualTime::from_secs(secs),
    }
}

/// S2: the `enqueued` stamp — the input to the sojourn-time metric — must
/// ride through the batch-granular queue unchanged and in FIFO order,
/// including across sealed-batch boundaries and interleaved pops.
#[test]
fn job_enqueued_stamps_survive_the_batch_queue_fifo() {
    let mut q: JobQueue<Job> = JobQueue::new();
    let total = 3 * q.batch_capacity() + 7; // span several sealed batches
    let mut expect = std::collections::VecDeque::new();
    for i in 0..total as u64 {
        q.push(job_at(i));
        expect.push_back(i);
        if i % 5 == 4 {
            let job = q.pop().expect("queue is non-empty");
            let want = expect.pop_front().unwrap();
            assert_eq!(job.enqueued, VirtualTime::from_secs(want));
        }
    }
    while let Some(job) = q.pop() {
        let want = expect.pop_front().expect("no phantom jobs");
        assert_eq!(job.enqueued, VirtualTime::from_secs(want), "FIFO order");
        assert_eq!(job.origin_ts, VirtualTime::from_secs(want));
    }
    assert!(expect.is_empty(), "every pushed job must come back out");
}

/// S2: `record_until` must stamp one sample per crossed grid point when a
/// single slow step jumps the clock over several of them.
#[test]
fn slow_step_stamps_every_crossed_grid_sample() {
    let interval = VirtualDuration::from_secs(1);
    let mut series = ThroughputSeries::new(interval);
    // One call, four crossed grid points (t = 0, 1, 2, 3 s).
    let now = VirtualTime::from_secs(3);
    while series.next_due() <= now {
        let due = series.next_due();
        series.record_until(due, 10, 100, 2);
    }
    let samples = series.samples();
    assert_eq!(samples.len(), 4, "grid points 0..=3 s");
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.t, VirtualTime::from_secs(i as u64), "on-grid stamp");
        assert_eq!((s.outputs, s.memory, s.backlog), (10, 100, 2));
    }
    assert_eq!(series.next_due(), VirtualTime::from_secs(4));
}

/// S2, end to end: however slow individual steps are, the recorded series
/// is always the full gap-free sampling grid.
#[test]
fn pipeline_series_has_no_grid_gaps() {
    let mut sc = paper_scenario(Scale::Quick, 13);
    // Inflate unit costs so single probes routinely cross grid points.
    sc.engine.params.c_base *= 50.0;
    sc.engine.params.c_c *= 50.0;
    let r = Executor::try_new(
        &sc.query,
        sc.workload(),
        IndexingMode::Scan,
        sc.engine.clone(),
    )
    .expect("valid engine configuration")
    .run();
    let interval = sc.engine.sample_interval;
    for (i, s) in r.series.samples().iter().enumerate() {
        assert_eq!(
            s.t,
            VirtualTime(interval.0 * i as u64),
            "sample {i} must sit on the grid"
        );
    }
    assert!(
        r.mean_job_latency_ticks > 0.0,
        "inflated costs must show up as backlog sojourn time"
    );
}

/// S3: no policy ever routes a partial tuple to a state it has already
/// visited, for any non-full visited mask — the invariant the probe
/// operator's `expect("covered")` relies on.
#[test]
fn router_never_chooses_a_visited_state() {
    let n = 4usize;
    for policy in [
        PolicyKind::RoundRobin,
        PolicyKind::SelectivityGreedy { exploration: 0.3 },
        PolicyKind::Lottery { exploration: 0.3 },
    ] {
        let mut router = Router::new(policy, n, 99);
        // Bias the statistics so greedy policies have a favorite…
        for _ in 0..50 {
            router.observe(StreamId(1), 40, 10);
            router.observe(StreamId(3), 0, 10);
        }
        // …then check every non-full mask, repeatedly (exploration rolls).
        for mask_bits in 0u16..(1 << n) - 1 {
            let mut visited = StreamMask::EMPTY;
            for s in 0..n as u16 {
                if mask_bits & (1 << s) != 0 {
                    visited = visited.with(StreamId(s));
                }
            }
            for _ in 0..20 {
                let choice = router.choose_next(visited);
                assert!(
                    !visited.covers(choice),
                    "{policy:?} routed to visited state {choice:?} (mask {mask_bits:#06b})"
                );
                assert!((choice.0 as usize) < n, "in-range state");
            }
        }
    }
}

/// S3: round-robin ordering is the lowest-id unvisited state, exactly.
#[test]
fn round_robin_picks_lowest_unvisited() {
    let mut router = Router::new(PolicyKind::RoundRobin, 4, 5);
    let cases = [
        (StreamMask::EMPTY, 0u16),
        (StreamMask::only(StreamId(0)), 1),
        (StreamMask::only(StreamId(1)), 0),
        (StreamMask::only(StreamId(0)).with(StreamId(1)), 2),
        (StreamMask::all(3), 3),
    ];
    for (visited, want) in cases {
        assert_eq!(router.choose_next(visited), StreamId(want));
    }
}

/// S3: budget-exhaustion edge cases around the comparison the sample
/// operator makes every grid point.
#[test]
fn budget_exhaustion_boundaries() {
    let budget = MemoryBudget { bytes: 1000 };
    let exactly = MemoryReport {
        states: 600,
        backlog: 400,
        phantom: 0,
        spilled: 0,
        cache: 0,
    };
    assert!(!exactly.over(budget), "spending the whole budget is fine");
    let one_more = MemoryReport {
        states: 600,
        backlog: 401,
        phantom: 0,
        spilled: 0,
        cache: 0,
    };
    assert!(one_more.over(budget), "one byte past the budget kills");
    let huge = MemoryReport {
        states: u64::MAX,
        backlog: 0,
        phantom: 0,
        spilled: 0,
        cache: 0,
    };
    assert!(
        !huge.over(MemoryBudget::unlimited()),
        "unlimited never breaches"
    );
    assert!(huge.over(MemoryBudget::default()));
}

/// S3: the OOM path of `baseline_oom.rs`, driven through the explicit
/// [`Pipeline`](amri_engine::Pipeline) API rather than `Executor::run`:
/// the run dies on a sampling grid point, the series is truncated at the
/// death sample, and that sample shows the breach.
#[test]
fn oom_through_the_explicit_pipeline_mirrors_the_baseline() {
    let mut sc = paper_scenario(Scale::Quick, 42);
    sc.engine.budget = MemoryBudget { bytes: 300_000 };
    let executor = Executor::try_new(
        &sc.query,
        sc.workload(),
        IndexingMode::AdaptiveHash {
            n_indices: 7,
            initial: None,
        },
        sc.engine.clone(),
    )
    .expect("valid engine configuration");
    let pipeline = executor.into_pipeline();
    assert_eq!(pipeline.context().outcome, RunOutcome::Completed);
    let r = pipeline.run();
    let RunOutcome::OutOfMemory { at } = r.outcome else {
        panic!("a 300 kB budget must kill hash-7: {:?}", r.outcome);
    };
    assert_eq!(
        at.0 % sc.engine.sample_interval.0,
        0,
        "death is detected on the sampling grid"
    );
    let last = r.series.samples().last().unwrap();
    assert_eq!(last.t, at, "series is truncated at the death sample");
    assert!(last.memory > 300_000, "the death sample shows the breach");
    assert!(r.final_time >= at);
}

/// The harness and the pipeline expose the same run: a `RunParams`-driven
/// `Pipeline` built by `into_pipeline` equals `Executor::run` outputs.
#[test]
fn into_pipeline_run_equals_executor_run() {
    let sc = paper_scenario(Scale::Quick, 3);
    let mode = IndexingMode::Amri {
        assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
        initial: None,
    };
    let build = || {
        Executor::try_new(&sc.query, sc.workload(), mode.clone(), sc.engine.clone())
            .expect("valid engine configuration")
    };
    let direct = build().run();
    let via_pipeline = build().into_pipeline().run();
    assert_eq!(format!("{direct:#?}"), format!("{via_pipeline:#?}"));
}

/// `EngineConfig` stays the source-compatible front door: a config built
/// with struct-update syntax over `Default` still drives a full run.
#[test]
fn engine_config_defaults_remain_source_compatible() {
    struct ConstWorkload;
    impl StreamWorkload for ConstWorkload {
        fn attrs_for(&mut self, _stream: StreamId, now: VirtualTime) -> AttrVec {
            AttrVec::from_slice(&[now.0 % 8, now.0 % 5, now.0 % 3]).unwrap()
        }
    }
    let sc = paper_scenario(Scale::Quick, 1);
    let config = EngineConfig {
        duration: VirtualDuration::from_secs(5),
        lambda_d: 20.0,
        ..sc.engine.clone()
    };
    let r = Executor::try_new(&sc.query, ConstWorkload, IndexingMode::Scan, config)
        .expect("valid engine configuration")
        .run();
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.label, "scan");
}
