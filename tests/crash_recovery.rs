//! Checkpoint/restore with crash-injection recovery, end to end: a run
//! killed at an injected crash step and resumed from its latest good
//! snapshot produces a `RunResult` byte-identical (down to the Debug
//! rendering) to the same run left uninterrupted — across shard counts,
//! parallelism levels, every indexing mode, and with the degradation
//! governor and fault-injection plan active. Torn snapshot writes are
//! detected by checksum and recovery falls back to the previous good
//! image; mismatched configurations are refused before any state moves.

use amri_core::assess::AssessorKind;
use amri_engine::{
    load_latest, CheckpointPolicy, Checkpointer, DegradationPolicy, EngineError, Executor,
    FaultKind, FaultPlan, IndexingMode, RunResult, TornMode,
};
use amri_stream::VirtualDuration;
use amri_synth::scenario::{paper_scenario, PaperScenario, Scale};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amri-crash-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A short but non-trivial scenario: long enough to retune and to cross
/// the crash step, short enough that the full matrix stays fast.
fn scenario(seed: u64) -> PaperScenario {
    let mut sc = paper_scenario(Scale::Quick, seed);
    sc.engine.duration = VirtualDuration::from_secs(8);
    sc
}

fn executor(sc: &PaperScenario, mode: IndexingMode) -> Executor<amri_synth::DriftingWorkload> {
    Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
}

/// Run uninterrupted; then crash an identical run at `crash_step` with
/// checkpoints every `every` steps; then resume from the latest good
/// snapshot and finish. Returns (baseline, resumed).
fn crash_and_resume(
    sc: &PaperScenario,
    mode: IndexingMode,
    dir: &PathBuf,
    every: u64,
    crash_step: u64,
) -> (RunResult, RunResult) {
    let baseline = executor(sc, mode.clone()).run();

    let exec = executor(sc, mode.clone());
    let fingerprint = exec.config_fingerprint();
    let mut ckpt = Checkpointer::new(dir, CheckpointPolicy::every(every))
        .unwrap()
        .with_faults(vec![FaultKind::CrashAt { step: crash_step }]);
    let died = exec
        .into_pipeline()
        .run_with(Some(&mut ckpt), fingerprint)
        .expect_err("the armed crash must kill the run");
    assert!(
        matches!(died, EngineError::InjectedCrash { step } if step == crash_step),
        "unexpected death: {died}"
    );
    assert!(
        ckpt.checkpoints_taken() > 0,
        "at least one checkpoint must precede the crash"
    );

    let (snap, report) = load_latest(dir).expect("a good snapshot must be recoverable");
    assert!(
        report.skipped.is_empty(),
        "no snapshot was corrupted in this scenario"
    );
    let resumed = executor(sc, mode)
        .resume_from(&snap)
        .expect("an identically-configured executor must accept the snapshot")
        .run_with(None, 0)
        .expect("a resumed run without a checkpointer cannot fail");
    (baseline, resumed)
}

fn assert_byte_identical(baseline: &RunResult, resumed: &RunResult, label: &str) {
    assert_eq!(
        format!("{baseline:#?}"),
        format!("{resumed:#?}"),
        "{label}: resumed run must be byte-identical to the uninterrupted one"
    );
}

/// The §V lineup, one representative per flavor.
fn all_modes() -> Vec<(&'static str, IndexingMode)> {
    vec![
        (
            "amri",
            IndexingMode::Amri {
                assessor: AssessorKind::Csria,
                initial: None,
            },
        ),
        (
            "multi-hash",
            IndexingMode::AdaptiveHash {
                n_indices: 3,
                initial: None,
            },
        ),
        (
            "static-bitmap",
            IndexingMode::StaticBitmap { configs: None },
        ),
        ("scan", IndexingMode::Scan),
    ]
}

/// The headline guarantee: crash + resume is invisible in the result, for
/// every indexing mode.
#[test]
fn resumed_runs_are_byte_identical_across_modes() {
    let sc = scenario(42);
    for (label, mode) in all_modes() {
        let dir = tmpdir(&format!("modes-{label}"));
        let (baseline, resumed) = crash_and_resume(&sc, mode, &dir, 60, 200);
        assert_byte_identical(&baseline, &resumed, label);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Sharded arenas and parallel probe workers recover identically: the
/// snapshot captures the logical state, so shard layout and thread count
/// survive restore untouched.
#[test]
fn resumed_runs_are_byte_identical_across_shards_and_parallelism() {
    for shards in [1usize, 4] {
        for parallelism in [1usize, 4] {
            let mut sc = scenario(17);
            sc.engine.shards = shards;
            sc.engine.parallelism = std::num::NonZeroUsize::new(parallelism).unwrap();
            let mode = IndexingMode::Amri {
                assessor: AssessorKind::Csria,
                initial: None,
            };
            let dir = tmpdir(&format!("grid-s{shards}-p{parallelism}"));
            let (baseline, resumed) = crash_and_resume(&sc, mode, &dir, 60, 200);
            assert_byte_identical(
                &baseline,
                &resumed,
                &format!("shards={shards} parallelism={parallelism}"),
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Recovery restores the governor's and the fault injector's RNG streams
/// and pending queues, so even a degraded, fault-perturbed run replays
/// byte-identically through a crash.
#[test]
fn degraded_and_faulted_runs_recover_byte_identically() {
    let mut sc = scenario(9);
    sc.engine.degradation = Some(DegradationPolicy::default());
    sc.engine.faults = Some(FaultPlan {
        seed: 77,
        drop_prob: 0.05,
        duplicate_prob: 0.05,
        reorder_prob: 0.15,
        late_prob: 0.1,
        late_by: VirtualDuration::from_secs(2),
        ..FaultPlan::default()
    });
    let mode = IndexingMode::Amri {
        assessor: AssessorKind::Csria,
        initial: None,
    };
    let dir = tmpdir("degraded-faulted");
    let (baseline, resumed) = crash_and_resume(&sc, mode, &dir, 60, 250);
    assert!(
        baseline.faults.total() > 0,
        "the plan must actually perturb the run"
    );
    assert_byte_identical(&baseline, &resumed, "degraded+faulted");
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn final write is caught by the file checksum; recovery falls back
/// to the previous good snapshot and the resumed run is still identical.
#[test]
fn torn_final_snapshot_falls_back_to_previous_good_image() {
    for mode in [TornMode::Truncate, TornMode::FlipByte] {
        let sc = scenario(5);
        let index_mode = IndexingMode::Scan;
        let baseline = executor(&sc, index_mode.clone()).run();

        let dir = tmpdir(&format!("torn-{mode:?}"));
        let exec = executor(&sc, index_mode.clone());
        let fingerprint = exec.config_fingerprint();
        // Checkpoints land at steps 60, 120, 180 (seqs 0, 1, 2); the crash
        // at 200 makes seq 2 the latest — and the torn write corrupts it.
        let mut ckpt = Checkpointer::new(&dir, CheckpointPolicy::every(60))
            .unwrap()
            .with_faults(vec![
                FaultKind::TornWrite { snapshot: 2, mode },
                FaultKind::CrashAt { step: 200 },
            ]);
        exec.into_pipeline()
            .run_with(Some(&mut ckpt), fingerprint)
            .expect_err("the armed crash must kill the run");
        assert_eq!(ckpt.checkpoints_taken(), 3);

        let (snap, report) = load_latest(&dir).expect("fallback must find seq 1");
        assert_eq!(
            report.skipped.len(),
            1,
            "exactly the torn file is skipped ({mode:?})"
        );
        assert_eq!(report.skipped[0].file, "checkpoint-000002.snap");
        assert!(
            report
                .path
                .to_string_lossy()
                .ends_with("checkpoint-000001.snap"),
            "fallback must pick the previous image, got {:?}",
            report.path
        );
        let resumed = executor(&sc, index_mode)
            .resume_from(&snap)
            .unwrap()
            .run_with(None, 0)
            .unwrap();
        assert_byte_identical(&baseline, &resumed, &format!("torn:{mode:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A snapshot from one configuration must not restore into another: the
/// fingerprint check refuses before any state is touched.
#[test]
fn mismatched_configuration_is_refused() {
    let sc = scenario(3);
    let dir = tmpdir("mismatch");
    let exec = executor(&sc, IndexingMode::Scan);
    let fingerprint = exec.config_fingerprint();
    let mut ckpt = Checkpointer::new(&dir, CheckpointPolicy::every(50))
        .unwrap()
        .with_faults(vec![FaultKind::CrashAt { step: 120 }]);
    exec.into_pipeline()
        .run_with(Some(&mut ckpt), fingerprint)
        .expect_err("the armed crash must kill the run");
    let (snap, _report) = load_latest(&dir).unwrap();

    // Different seed → different workload and router streams → refused.
    let mut other = scenario(3);
    other.engine.seed ^= 1;
    let err = match executor(&other, IndexingMode::Scan).resume_from(&snap) {
        Err(e) => e,
        Ok(_) => panic!("a different configuration must be refused"),
    };
    assert!(
        matches!(
            err,
            EngineError::Snapshot(amri_stream::SnapshotError::ConfigMismatch { .. })
        ),
        "wrong error: {err}"
    );
    // A different mode is refused too.
    let err = match executor(&sc, IndexingMode::StaticBitmap { configs: None }).resume_from(&snap) {
        Err(e) => e,
        Ok(_) => panic!("a different indexing mode must be refused"),
    };
    assert!(
        matches!(err, EngineError::Snapshot(_)),
        "wrong error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The parallel write path end to end: shards=4/parallelism=4 routes
/// every insert/expire through the staged per-shard ingest seam and
/// overlaps it with the probe, while the degradation governor and a
/// fault plan perturb the stream. A checkpoint taken between a parallel
/// ingest burst and the probe that flushes it must capture the logical
/// state exactly, so crash + resume stays invisible even with every
/// concurrent subsystem engaged at once.
#[test]
fn parallel_ingest_with_degradation_and_faults_recovers_byte_identically() {
    let mut sc = scenario(9);
    sc.engine.shards = 4;
    sc.engine.parallelism = std::num::NonZeroUsize::new(4).unwrap();
    sc.engine.degradation = Some(DegradationPolicy::default());
    sc.engine.faults = Some(FaultPlan {
        seed: 77,
        drop_prob: 0.05,
        duplicate_prob: 0.05,
        reorder_prob: 0.15,
        late_prob: 0.1,
        late_by: VirtualDuration::from_secs(2),
        ..FaultPlan::default()
    });
    let mode = IndexingMode::Amri {
        assessor: AssessorKind::Csria,
        initial: None,
    };
    let dir = tmpdir("parallel-degraded-faulted");
    let (baseline, resumed) = crash_and_resume(&sc, mode, &dir, 60, 250);
    assert!(
        baseline.faults.total() > 0,
        "the plan must actually perturb the run"
    );
    assert_byte_identical(&baseline, &resumed, "parallel degraded+faulted");
    std::fs::remove_dir_all(&dir).ok();
}

/// Dense checkpoints bracket every migration: with a snapshot at *every*
/// step, some snapshot lands on the exact step of each retune, so the
/// resume replays from immediately before/after a sharded migration
/// rather than a quiet stretch. The run must actually retune for the
/// test to mean anything, and recovery must still be byte-identical.
#[test]
fn dense_checkpoints_resume_mid_migration_byte_identically() {
    let mut sc = scenario(42);
    // The 8s quick run ends before the assessor's first verdict; 12s is
    // the shortest duration where this workload migrates (4 retunes).
    sc.engine.duration = VirtualDuration::from_secs(12);
    sc.engine.shards = 4;
    sc.engine.parallelism = std::num::NonZeroUsize::new(4).unwrap();
    let mode = IndexingMode::Amri {
        assessor: AssessorKind::Csria,
        initial: None,
    };
    let dir = tmpdir("dense-mid-migration");
    let (baseline, resumed) = crash_and_resume(&sc, mode, &dir, 1, 300);
    assert!(
        !baseline.retunes.is_empty(),
        "the scenario must migrate at least once for the dense bracket to bite"
    );
    assert_byte_identical(&baseline, &resumed, "dense mid-migration");
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpointing is a pure observer: a run that takes snapshots is
/// byte-identical to one that never does.
#[test]
fn checkpointing_does_not_perturb_the_run() {
    let sc = scenario(21);
    let mode = IndexingMode::AdaptiveHash {
        n_indices: 2,
        initial: None,
    };
    let plain = executor(&sc, mode.clone()).run();

    let dir = tmpdir("observer");
    let exec = executor(&sc, mode);
    let fingerprint = exec.config_fingerprint();
    let mut ckpt = Checkpointer::new(&dir, CheckpointPolicy::every(75)).unwrap();
    let observed = exec
        .into_pipeline()
        .run_with(Some(&mut ckpt), fingerprint)
        .unwrap();
    assert!(ckpt.checkpoints_taken() > 0);
    assert_byte_identical(&plain, &observed, "observer");
    std::fs::remove_dir_all(&dir).ok();
}
