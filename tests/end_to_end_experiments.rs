//! End-to-end shape checks of the §V experiments at quick scale: who wins,
//! whether curves are sane, and that the full lineup runs deterministically.
//! (Full-scale figure regeneration lives in the `amri-bench` binaries; see
//! EXPERIMENTS.md.)

use amri_bench::{
    fig6_assessment, fig6_hash, fig7_compare, render_ascii_chart, render_series_table,
    render_summary, write_csv,
};
use amri_synth::scenario::Scale;

#[test]
fn fig6_quick_lineup_completes_with_sane_curves() {
    let runs = fig6_assessment(Scale::Quick, 42, std::num::NonZeroUsize::MIN);
    assert_eq!(runs.len(), 5);
    for r in &runs {
        assert!(r.outputs > 0, "{} produced nothing", r.label);
        // Monotone cumulative curves.
        let s = r.series.samples();
        assert!(!s.is_empty());
        assert!(
            s.windows(2).all(|w| w[0].outputs <= w[1].outputs),
            "{} curve not monotone",
            r.label
        );
    }
    // The five labels are distinct and as advertised.
    let mut labels: Vec<&str> = runs.iter().map(|r| r.label.as_str()).collect();
    labels.sort_unstable();
    assert_eq!(
        labels,
        vec![
            "AMRI-CDIA-highest",
            "AMRI-CDIA-random",
            "AMRI-CSRIA",
            "AMRI-DIA",
            "AMRI-SRIA"
        ]
    );
    // Rendering must not panic and must carry every label.
    let table = render_series_table(&runs, 8);
    let summary = render_summary(&runs);
    for l in labels {
        assert!(table.contains(l));
        assert!(summary.contains(l));
    }
}

#[test]
fn fig6_is_deterministic_per_seed() {
    let a = fig6_assessment(Scale::Quick, 7, std::num::NonZeroUsize::MIN);
    let b = fig6_assessment(Scale::Quick, 7, std::num::NonZeroUsize::MIN);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.outputs, y.outputs, "{}", x.label);
    }
}

#[test]
fn fig6_hash_quick_sweep_has_seven_labeled_runs() {
    let runs = fig6_hash(Scale::Quick, 42, std::num::NonZeroUsize::MIN);
    assert_eq!(runs.len(), 7);
    for (i, r) in runs.iter().enumerate() {
        assert_eq!(r.label, format!("hash-{}", i + 1));
        assert!(r.outputs > 0, "{}", r.label);
    }
    // All seven compute the same join when unconstrained (quick scale has
    // an unlimited budget), so outputs agree — the controlled-comparison
    // sanity check.
    let first = runs[0].outputs;
    assert!(
        runs.iter().all(|r| r.outputs == first),
        "unconstrained runs must agree: {:?}",
        runs.iter().map(|r| r.outputs).collect::<Vec<_>>()
    );
}

#[test]
fn fig7_quick_bundle_reports_gains_and_charts() {
    let f7 = fig7_compare(Scale::Quick, 42, std::num::NonZeroUsize::MIN);
    assert!(f7.amri.outputs > 0);
    assert!(f7.best_hash.label.starts_with("hash-"));
    // Unconstrained quick runs tie, so the gains hover near zero — the
    // *machinery* (selection of best hash, ratio computation) is what this
    // test pins down; the Paper-scale separation is asserted by the
    // regenerated figures.
    assert!(f7.gain_over_hash() > -0.05);
    assert!(f7.gain_over_bitmap() > -0.05);
    let runs = vec![f7.amri.clone(), f7.best_hash.clone(), f7.bitmap.clone()];
    let chart = render_ascii_chart(&runs, 60, 12);
    assert!(chart.contains("AMRI-CDIA-highest"), "{chart}");
    // CSV export works end to end.
    let dir = std::env::temp_dir().join("amri_e2e_csv");
    let path = dir.join("fig7.csv");
    write_csv(&runs, &path).unwrap();
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.starts_with("t_secs,AMRI-CDIA-highest"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_states_see_drifting_patterns() {
    let runs = fig6_assessment(Scale::Quick, 42, std::num::NonZeroUsize::MIN);
    for r in &runs {
        for (state, stats) in r.pattern_stats.iter().enumerate() {
            assert!(
                stats.len() >= 2,
                "{} state {state} saw a single pattern only: {stats:?}",
                r.label
            );
        }
    }
}
