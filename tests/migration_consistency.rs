//! Cross-crate invariant: online index migration never changes query
//! answers — whatever configuration the tuner moves a state to, searches
//! return exactly what a reference scan returns.

use amri_core::assess::AssessorKind;
use amri_core::{
    AmriState, CostParams, CostReceipt, IndexConfig, ScanIndex, SearchScratch, StateStore,
    TunerConfig, TupleKey,
};

/// Scratch-buffered search, collected: the migration probes care about the
/// hit *sets*, so each call copies the reused scratch buffer out.
fn search_amri(state: &mut AmriState, req: &SearchRequest, r: &mut CostReceipt) -> Vec<TupleKey> {
    let mut scratch = SearchScratch::new();
    state.search_into(req, &mut scratch, r);
    scratch.hits
}
use amri_hh::CombineStrategy;
use amri_stream::{
    AccessPattern, AttrId, AttrVec, SearchRequest, StreamId, Tuple, TupleId, VirtualDuration,
    VirtualTime, WindowSpec,
};
use proptest::prelude::*;

fn build_amri(seed: u64) -> AmriState {
    AmriState::new(
        StreamId(0),
        vec![AttrId(0), AttrId(1), AttrId(2)],
        WindowSpec::secs(1000),
        AssessorKind::Cdia(CombineStrategy::Random),
        IndexConfig::even(3, 16).unwrap(),
        TunerConfig {
            assess_period: VirtualDuration::from_secs(1),
            min_requests: 10,
            total_bits: 16,
            seed,
            ..TunerConfig::default()
        },
        CostParams::default(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Drive an AMRI state and a scan-only reference through identical
    /// operation sequences with interleaved retunes; answers must agree.
    #[test]
    fn amri_agrees_with_scan_reference_through_migrations(
        tuples in proptest::collection::vec(proptest::collection::vec(0u64..8, 3), 20..120),
        probes in proptest::collection::vec((1u32..8, proptest::collection::vec(0u64..8, 3)), 10..60),
        seed in 0u64..1000,
    ) {
        let mut amri = build_amri(seed);
        let mut reference = StateStore::new(
            StreamId(0),
            vec![AttrId(0), AttrId(1), AttrId(2)],
            WindowSpec::secs(1000),
            ScanIndex::new(),
        );
        let mut r = CostReceipt::new();
        for (i, vals) in tuples.iter().enumerate() {
            let t = Tuple::new(
                TupleId(i as u64),
                StreamId(0),
                VirtualTime::ZERO,
                AttrVec::from_slice(vals).unwrap(),
            );
            amri.insert(t, &mut r);
            reference.insert(t, &mut r);
        }
        for (step, (mask, vals)) in probes.iter().enumerate() {
            let req = SearchRequest::new(
                AccessPattern::new(*mask, 3),
                AttrVec::from_slice(vals).unwrap(),
            );
            let mut got = search_amri(&mut amri, &req, &mut r);
            let mut expect = {
                let mut scratch = SearchScratch::new();
                reference.search_into(&req, &mut scratch, &mut r);
                scratch.hits
            };
            got.sort();
            expect.sort();
            prop_assert_eq!(&got, &expect, "divergence at probe {}", step);
            // Let the tuner migrate mid-stream.
            amri.maybe_retune(
                VirtualTime::from_secs(step as u64 + 1),
                100.0,
                100.0,
                1000.0,
                &mut r,
            );
        }
    }
}

#[test]
fn forced_migration_chain_preserves_answers() {
    // Deterministic version: walk through a chain of configurations.
    let mut amri = build_amri(7);
    let mut r = CostReceipt::new();
    for i in 0..300u64 {
        let t = Tuple::new(
            TupleId(i),
            StreamId(0),
            VirtualTime::ZERO,
            AttrVec::from_slice(&[i % 5, i % 7, i % 3]).unwrap(),
        );
        amri.insert(t, &mut r);
    }
    let req = SearchRequest::new(
        AccessPattern::from_positions(&[1], 3).unwrap(),
        AttrVec::from_slice(&[0, 4, 0]).unwrap(),
    );
    let baseline = {
        let mut v = search_amri(&mut amri, &req, &mut r);
        v.sort();
        v
    };
    assert_eq!(baseline.len(), 300 / 7 + 1); // i % 7 == 4 for i in 0..300

    // Alternate workloads to force different configurations.
    for round in 0..6u64 {
        let hot_attr = (round % 3) as usize;
        for i in 0..200u64 {
            let mut vals = AttrVec::from_slice(&[0, 0, 0]).unwrap();
            vals.set(hot_attr, i % 5);
            let probe =
                SearchRequest::new(AccessPattern::from_positions(&[hot_attr], 3).unwrap(), vals);
            search_amri(&mut amri, &probe, &mut r);
        }
        amri.maybe_retune(
            VirtualTime::from_secs(round + 1),
            1000.0,
            200.0,
            1000.0,
            &mut r,
        );
        let mut now = search_amri(&mut amri, &req, &mut r);
        now.sort();
        assert_eq!(now, baseline, "round {round}, config {}", amri.config());
    }
    let (_, migrations) = amri.tuner().stats();
    assert!(
        migrations >= 2,
        "the drifting workload must force migrations"
    );
}
