//! The §V failure mode, end to end: under a tight memory budget the
//! hash-module and static-bitmap baselines die of memory exhaustion while
//! AMRI — same budget, same workload — survives longer (or to the end).

use amri_core::assess::AssessorKind;
use amri_engine::{
    DegradationPolicy, Executor, IndexingMode, MemoryBudget, RunOutcome, RunResult, SheddingPolicy,
};
use amri_hh::CombineStrategy;
use amri_stream::VirtualTime;
use amri_synth::scenario::{paper_scenario, Scale};

fn run_with_budget(mode: IndexingMode, budget: MemoryBudget, seed: u64) -> RunResult {
    let mut sc = paper_scenario(Scale::Quick, seed);
    sc.engine.budget = budget;
    Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
        .run()
}

fn lifetime(r: &RunResult) -> VirtualTime {
    r.death_time().unwrap_or(r.final_time)
}

#[test]
fn hash_modules_die_before_amri_under_the_same_budget() {
    // Budget sized so the per-tuple overhead of 7 hash indices breaches it
    // but AMRI's single bit-address index does not (quick scale: AMRI's
    // steady state is ≈190 kB, the 7-index module several times that).
    let budget = MemoryBudget { bytes: 300_000 };
    let amri = run_with_budget(
        IndexingMode::Amri {
            assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
            initial: None,
        },
        budget,
        42,
    );
    let hash7 = run_with_budget(
        IndexingMode::AdaptiveHash {
            n_indices: 7,
            initial: None,
        },
        budget,
        42,
    );
    assert!(
        matches!(hash7.outcome, RunOutcome::OutOfMemory { .. }),
        "hash-7 must exhaust the budget: {:?}",
        hash7.outcome
    );
    assert!(
        lifetime(&amri) > lifetime(&hash7),
        "AMRI ({}) must outlive hash-7 ({})",
        lifetime(&amri),
        lifetime(&hash7)
    );
    assert!(
        amri.outputs > hash7.outputs,
        "AMRI must out-produce the dying baseline"
    );
}

#[test]
fn oom_truncates_the_series_at_death() {
    let budget = MemoryBudget { bytes: 400_000 };
    let r = run_with_budget(
        IndexingMode::AdaptiveHash {
            n_indices: 7,
            initial: None,
        },
        budget,
        7,
    );
    let RunOutcome::OutOfMemory { at } = r.outcome else {
        panic!("a 400 kB budget must die: {:?}", r.outcome);
    };
    let last = r.series.samples().last().unwrap();
    assert_eq!(last.t, at, "the series ends at the death sample");
    assert!(last.memory > budget.bytes, "death sample shows the breach");
}

/// The tentpole's survival criterion: the same tiny budget that kills the
/// ungoverned hash baseline leaves a `DegradationPolicy`-enabled run alive
/// to the workload's end, finishing `Degraded` with monotone shed/evict
/// counters instead of `OutOfMemory`.
#[test]
fn degradation_policy_keeps_a_doomed_run_alive() {
    let budget = MemoryBudget { bytes: 300_000 };
    let mode = || IndexingMode::AdaptiveHash {
        n_indices: 7,
        initial: None,
    };
    // Ungoverned: this budget is lethal (same setup as the test above).
    let doomed = run_with_budget(mode(), budget, 42);
    let RunOutcome::OutOfMemory { at } = doomed.outcome else {
        panic!("the ungoverned run must die: {:?}", doomed.outcome);
    };

    // Governed: same budget, same workload, same mode — but shed and
    // evict instead of dying.
    let mut sc = paper_scenario(Scale::Quick, 42);
    sc.engine.budget = budget;
    sc.engine.degradation = Some(DegradationPolicy {
        high_water: 0.9,
        low_water: 0.7,
        max_backlog: 512,
        shedding: SheddingPolicy::DropOldest,
        seed: 1,
    });
    let governed = Executor::try_new(&sc.query, sc.workload(), mode(), sc.engine.clone())
        .expect("valid engine configuration")
        .run();

    let RunOutcome::Degraded {
        first_at,
        shed_jobs,
        evicted_tuples,
        ..
    } = governed.outcome
    else {
        panic!(
            "the governed run must survive degraded, got {:?}",
            governed.outcome
        );
    };
    assert_eq!(
        governed.final_time,
        VirtualTime::ZERO + sc.engine.duration,
        "survived to the workload's end"
    );
    assert!(governed.death_time().is_none());
    assert!(
        shed_jobs > 0 || evicted_tuples > 0,
        "degradation must have done something"
    );
    assert!(
        first_at <= at + sc.engine.sample_interval,
        "degradation starts no later than the ungoverned death ({first_at} vs {at})"
    );
    // The result mirrors the outcome counters.
    assert_eq!(governed.degradation.shed_jobs, shed_jobs);
    assert_eq!(governed.degradation.evicted_tuples, evicted_tuples);
    assert_eq!(governed.degradation.first_at, Some(first_at));
    // Per-grid samples exist and the cumulative counters are monotone.
    let samples = &governed.degradation.samples;
    assert!(!samples.is_empty(), "a governed run records grid samples");
    assert!(
        samples.windows(2).all(|w| {
            w[0].t < w[1].t
                && w[0].shed_jobs <= w[1].shed_jobs
                && w[0].evicted_tuples <= w[1].evicted_tuples
        }),
        "shed/evict counters must be monotone over the grid"
    );
    let last = samples.last().unwrap();
    assert_eq!(last.shed_jobs, shed_jobs);
    assert_eq!(last.evicted_tuples, evicted_tuples);
    // And it kept producing output while degraded.
    assert!(
        governed.outputs > doomed.outputs,
        "surviving degraded must out-produce dying: {} vs {}",
        governed.outputs,
        doomed.outputs
    );
}

#[test]
fn generous_budget_completes_every_mode() {
    for mode in [
        IndexingMode::Amri {
            assessor: AssessorKind::Sria,
            initial: None,
        },
        IndexingMode::AdaptiveHash {
            n_indices: 3,
            initial: None,
        },
        IndexingMode::StaticBitmap { configs: None },
        IndexingMode::Scan,
    ] {
        let label = mode.label();
        let r = run_with_budget(mode, MemoryBudget::unlimited(), 11);
        assert_eq!(r.outcome, RunOutcome::Completed, "{label}");
    }
}
