//! The §V failure mode, end to end: under a tight memory budget the
//! hash-module and static-bitmap baselines die of memory exhaustion while
//! AMRI — same budget, same workload — survives longer (or to the end).

use amri_core::assess::AssessorKind;
use amri_engine::{Executor, IndexingMode, MemoryBudget, RunOutcome, RunResult};
use amri_hh::CombineStrategy;
use amri_stream::VirtualTime;
use amri_synth::scenario::{paper_scenario, Scale};

fn run_with_budget(mode: IndexingMode, budget: MemoryBudget, seed: u64) -> RunResult {
    let mut sc = paper_scenario(Scale::Quick, seed);
    sc.engine.budget = budget;
    Executor::new(&sc.query, sc.workload(), mode, sc.engine.clone()).run()
}

fn lifetime(r: &RunResult) -> VirtualTime {
    r.death_time().unwrap_or(r.final_time)
}

#[test]
fn hash_modules_die_before_amri_under_the_same_budget() {
    // Budget sized so the per-tuple overhead of 7 hash indices breaches it
    // but AMRI's single bit-address index does not (quick scale: AMRI's
    // steady state is ≈190 kB, the 7-index module several times that).
    let budget = MemoryBudget { bytes: 300_000 };
    let amri = run_with_budget(
        IndexingMode::Amri {
            assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
            initial: None,
        },
        budget,
        42,
    );
    let hash7 = run_with_budget(
        IndexingMode::AdaptiveHash {
            n_indices: 7,
            initial: None,
        },
        budget,
        42,
    );
    assert!(
        matches!(hash7.outcome, RunOutcome::OutOfMemory { .. }),
        "hash-7 must exhaust the budget: {:?}",
        hash7.outcome
    );
    assert!(
        lifetime(&amri) > lifetime(&hash7),
        "AMRI ({}) must outlive hash-7 ({})",
        lifetime(&amri),
        lifetime(&hash7)
    );
    assert!(
        amri.outputs > hash7.outputs,
        "AMRI must out-produce the dying baseline"
    );
}

#[test]
fn oom_truncates_the_series_at_death() {
    let budget = MemoryBudget { bytes: 400_000 };
    let r = run_with_budget(
        IndexingMode::AdaptiveHash {
            n_indices: 7,
            initial: None,
        },
        budget,
        7,
    );
    let RunOutcome::OutOfMemory { at } = r.outcome else {
        panic!("a 400 kB budget must die: {:?}", r.outcome);
    };
    let last = r.series.samples().last().unwrap();
    assert_eq!(last.t, at, "the series ends at the death sample");
    assert!(last.memory > budget.bytes, "death sample shows the breach");
}

#[test]
fn generous_budget_completes_every_mode() {
    for mode in [
        IndexingMode::Amri {
            assessor: AssessorKind::Sria,
            initial: None,
        },
        IndexingMode::AdaptiveHash {
            n_indices: 3,
            initial: None,
        },
        IndexingMode::StaticBitmap { configs: None },
        IndexingMode::Scan,
    ] {
        let label = mode.label();
        let r = run_with_budget(mode, MemoryBudget::unlimited(), 11);
        assert_eq!(r.outcome, RunOutcome::Completed, "{label}");
    }
}
