//! Acceptance for the spill-tier read fast path: the decoded-block
//! cache, batch read coalescing and expiry-order readahead are pure
//! accelerations. Under the identity [`StorageProfile`] a cache-enabled
//! run must be byte-identical to the cacheless one (the cache's own
//! counters aside), at any worker-thread count and any shard count; and
//! crash + resume with a warm cache — whose decoded contents are
//! deliberately *not* snapshotted, only its metadata and counters —
//! must land byte-identical to the uninterrupted cached run.

use amri_core::assess::AssessorKind;
use amri_core::StorageProfile;
use amri_engine::{
    load_latest, CheckpointPolicy, Checkpointer, EngineError, Executor, FaultKind, IndexingMode,
    MemoryBudget, RunOutcome, RunResult, SpillSettings,
};
use amri_stream::VirtualDuration;
use amri_synth::scenario::{paper_scenario, PaperScenario, Scale};
use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::path::PathBuf;

const CACHE_BYTES: u64 = 256 * 1024;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amri-spill-cache-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Quick scenario with `shards` arena shards and `threads` workers; the
/// shard count is pinned independently of the thread count because the
/// identity claim is *per shard count* (different shard counts produce
/// different, equally valid, hit orders).
fn scenario(seed: u64, shards: usize, threads: usize) -> PaperScenario {
    let mut sc = paper_scenario(Scale::Quick, seed);
    sc.engine.duration = VirtualDuration::from_secs(8);
    sc.engine.budget = MemoryBudget::unlimited();
    sc.engine.shards = shards;
    sc.engine.parallelism = NonZeroUsize::new(threads).unwrap();
    sc
}

fn executor(sc: &PaperScenario, mode: IndexingMode) -> Executor<amri_synth::DriftingWorkload> {
    Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
}

fn amri_mode() -> IndexingMode {
    IndexingMode::Amri {
        assessor: AssessorKind::Csria,
        initial: None,
    }
}

/// Identity-profile cache settings: zero latency everywhere (so the
/// cache is behaviorally invisible) but readahead enabled, so the
/// prefetch path is exercised by the comparison.
fn cached_settings(dir: &std::path::Path) -> SpillSettings {
    SpillSettings {
        profile: StorageProfile {
            readahead_blocks: 2,
            ..StorageProfile::default()
        },
        ..SpillSettings::in_dir(dir)
    }
    .with_cache_bytes(CACHE_BYTES)
}

/// Zero the counters only the cache produces, leaving every shared
/// observable (outputs, digest, heat-driven promotion counters, read
/// accounting) intact for the byte comparison.
fn normalize(mut r: RunResult) -> RunResult {
    r.spill.cache_hits = 0;
    r.spill.cache_misses = 0;
    r.spill.coalesced_reads = 0;
    r.spill.prefetched_blocks = 0;
    r.spill.cache_evictions = 0;
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Across seeds and shard counts S ∈ {1, 2, 4, 8}: the cacheless
    /// spilled run, the cache-enabled run at one thread and the
    /// cache-enabled run at four threads are all byte-identical under
    /// the identity profile (cache-only counters normalized away).
    #[test]
    fn cache_and_threads_are_invisible_under_identity_profile(
        seed in 100u64..400,
        shard_idx in 0usize..4,
    ) {
        let shards = [1usize, 2, 4, 8][shard_idx];
        let base = scenario(seed, shards, 1);
        let baseline = executor(&base, amri_mode()).run();
        prop_assert_eq!(baseline.outcome, RunOutcome::Completed);
        let budget = baseline.series.peak_memory() * 7 / 10;

        let dir = tmpdir(&format!("prop-{seed}-{shards}"));
        let spilled = {
            let mut sc = scenario(seed, shards, 1);
            sc.engine.budget = MemoryBudget { bytes: budget };
            sc.engine.spill = Some(SpillSettings::in_dir(dir.join("cacheless")));
            executor(&sc, amri_mode()).run()
        };
        prop_assert_eq!(spilled.outcome, RunOutcome::Completed);
        prop_assert!(spilled.spill.spilled_tuples > 0, "the tier must engage");

        let cached_run = |threads: usize| {
            let mut sc = scenario(seed, shards, threads);
            sc.engine.budget = MemoryBudget { bytes: budget };
            sc.engine.spill = Some(cached_settings(&dir.join(format!("cached-t{threads}"))));
            executor(&sc, amri_mode()).run()
        };
        let cached_t1 = cached_run(1);
        let cached_t4 = cached_run(4);

        // Cache on vs off: identical once the cache's own counters are
        // normalized (a hit still charges heat and blocks_read, so every
        // shared counter agrees).
        prop_assert_eq!(
            format!("{:#?}", normalize(cached_t1.clone())),
            format!("{spilled:#?}"),
            "cache on vs off diverged (seed {}, {} shards)", seed, shards
        );
        // Threads 1 vs 4 at the same shard count: identical including
        // the cache counters — coins are pre-drawn sequentially and
        // parallel reads merge in plan order.
        prop_assert_eq!(
            format!("{cached_t1:#?}"),
            format!("{cached_t4:#?}"),
            "threads 1 vs 4 diverged (seed {}, {} shards)", seed, shards
        );
        if cached_t1.spill.blocks_read > 0 {
            prop_assert!(
                cached_t1.spill.cache_hits + cached_t1.spill.cache_misses > 0,
                "an engaged cache must classify demand reads"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Crash + resume with a *warm* cache: the snapshot carries the cache's
/// metadata (ids, touch order, byte accounting) and its counters but not
/// the decoded blocks, which rewarm lazily on first touch — and the
/// resumed run is still byte-identical to the uninterrupted cached run,
/// Debug render and all.
#[test]
fn crash_and_resume_with_warm_cache_is_byte_identical() {
    let dir = tmpdir("crash");
    for (label, mode) in [
        ("amri", amri_mode()),
        ("scan", IndexingMode::Scan),
        (
            "static-bitmap",
            IndexingMode::StaticBitmap { configs: None },
        ),
    ] {
        let base = scenario(17, 4, 1);
        let peak = executor(&base, mode.clone()).run().series.peak_memory();
        let mut sc = base;
        sc.engine.budget = MemoryBudget {
            bytes: peak * 7 / 10,
        };
        sc.engine.spill = Some(cached_settings(&dir.join(label)));

        let baseline = executor(&sc, mode.clone()).run();
        assert!(
            baseline.spill.spilled_tuples > 0,
            "{label}: the tier must be active"
        );
        assert!(
            baseline.spill.cache_hits + baseline.spill.cache_misses > 0,
            "{label}: the cache must be exercised for the crash to mean anything"
        );

        let ckpt_dir = dir.join(format!("{label}-ckpt"));
        let exec = executor(&sc, mode.clone());
        let fingerprint = exec.config_fingerprint();
        let mut ckpt = Checkpointer::new(&ckpt_dir, CheckpointPolicy::every(60))
            .unwrap()
            .with_faults(vec![FaultKind::CrashAt { step: 200 }]);
        let died = exec
            .into_pipeline()
            .run_with(Some(&mut ckpt), fingerprint)
            .expect_err("the armed crash must kill the run");
        assert!(
            matches!(died, EngineError::InjectedCrash { step: 200 }),
            "unexpected death: {died}"
        );

        let (snap, report) = load_latest(&ckpt_dir).expect("a good snapshot must exist");
        assert!(report.skipped.is_empty());
        let resumed = executor(&sc, mode)
            .resume_from(&snap)
            .expect("same configuration: snapshot must be accepted")
            .run_with(None, 0)
            .expect("a resumed run without a checkpointer cannot fail");
        assert_eq!(
            format!("{baseline:#?}"),
            format!("{resumed:#?}"),
            "{label}: crash + resume with a warm cache must be invisible"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
