//! The deterministic fault-injection harness, end to end: a seeded
//! [`FaultPlan`] perturbs the arrival stream (drop / duplicate / late /
//! reorder), injects allocation pressure at chosen instants, and skews the
//! clock — and every perturbed run replays bit-for-bit from its seed.

use amri_engine::{
    DegradationPolicy, Executor, FaultPlan, IndexingMode, MemoryBudget, PressureWindow, RunOutcome,
    RunResult, SheddingPolicy, SkewedClock,
};
use amri_stream::{VirtualClock, VirtualDuration, VirtualTime};
use amri_synth::scenario::{paper_scenario, Scale};

fn run_with_faults(faults: Option<FaultPlan>, seed: u64) -> RunResult {
    let mut sc = paper_scenario(Scale::Quick, seed);
    sc.engine.faults = faults;
    Executor::try_new(
        &sc.query,
        sc.workload(),
        IndexingMode::Scan,
        sc.engine.clone(),
    )
    .expect("valid engine configuration")
    .run()
}

fn noisy_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_prob: 0.1,
        duplicate_prob: 0.1,
        reorder_prob: 0.2,
        late_prob: 0.1,
        late_by: VirtualDuration::from_secs(2),
        ..FaultPlan::default()
    }
}

/// The acceptance criterion: two runs under the same seeded plan produce
/// identical `RunResult`s, down to the Debug rendering.
#[test]
fn seeded_fault_plans_replay_identically() {
    let a = run_with_faults(Some(noisy_plan(9)), 42);
    let b = run_with_faults(Some(noisy_plan(9)), 42);
    assert_eq!(
        format!("{a:#?}"),
        format!("{b:#?}"),
        "same seed must replay bit-for-bit"
    );
    // The plan actually did inject every fault kind.
    assert!(a.faults.dropped > 0, "{:?}", a.faults);
    assert!(a.faults.duplicated > 0, "{:?}", a.faults);
    assert!(a.faults.delayed > 0, "{:?}", a.faults);
    assert!(a.faults.reordered > 0, "{:?}", a.faults);
    assert_eq!(a.outcome, RunOutcome::Completed);

    // A different fault seed perturbs differently.
    let c = run_with_faults(Some(noisy_plan(10)), 42);
    assert_ne!(
        (a.faults, a.outputs),
        (c.faults, c.outputs),
        "different fault seeds must diverge"
    );
}

#[test]
fn clean_runs_report_zero_faults() {
    let r = run_with_faults(None, 42);
    assert_eq!(r.faults.total(), 0);
    assert!(r.degradation.samples.is_empty());
    // An all-zero plan is also a no-op on the counters.
    let z = run_with_faults(Some(FaultPlan::default()), 42);
    assert_eq!(z.faults.total(), 0);
    assert_eq!(z.outputs, r.outputs, "a no-op plan must not change volume");
}

#[test]
fn drops_shrink_and_duplicates_grow_the_join_volume() {
    let base = run_with_faults(None, 42);
    let dropped = run_with_faults(
        Some(FaultPlan {
            seed: 3,
            drop_prob: 0.5,
            ..FaultPlan::default()
        }),
        42,
    );
    let doubled = run_with_faults(
        Some(FaultPlan {
            seed: 3,
            duplicate_prob: 0.5,
            ..FaultPlan::default()
        }),
        42,
    );
    // Joins are ~quadratic in arrival volume: halving arrivals should cut
    // outputs far more than half; 1.5x arrivals should add well over 1.5x.
    assert!(
        dropped.outputs < base.outputs / 2,
        "dropping half the arrivals must crater the join volume: {} vs {}",
        dropped.outputs,
        base.outputs
    );
    assert!(
        doubled.outputs > base.outputs * 3 / 2,
        "duplicating half the arrivals must inflate the join volume: {} vs {}",
        doubled.outputs,
        base.outputs
    );
    assert!(dropped.faults.dropped > 0 && dropped.faults.duplicated == 0);
    assert!(doubled.faults.duplicated > 0 && doubled.faults.dropped == 0);
}

#[test]
fn late_and_reordered_tuples_still_complete_the_run() {
    let late = run_with_faults(
        Some(FaultPlan {
            seed: 5,
            late_prob: 0.3,
            late_by: VirtualDuration::from_secs(3),
            ..FaultPlan::default()
        }),
        42,
    );
    assert_eq!(late.outcome, RunOutcome::Completed);
    assert!(late.faults.delayed > 0);
    assert!(late.outputs > 0);

    let reordered = run_with_faults(
        Some(FaultPlan {
            seed: 5,
            reorder_prob: 0.5,
            ..FaultPlan::default()
        }),
        42,
    );
    assert_eq!(reordered.outcome, RunOutcome::Completed);
    assert!(reordered.faults.reordered > 0);
    // Reordering changes service order, not the arrival stream: the join
    // volume stays in the same ballpark as the clean run.
    let base = run_with_faults(None, 42);
    assert!(reordered.outputs > base.outputs / 2);
}

/// The allocation-pressure fault: a budget crossing forced at a chosen
/// instant kills an ungoverned run exactly there.
#[test]
fn pressure_forces_oom_at_the_chosen_instant() {
    let mut sc = paper_scenario(Scale::Quick, 42);
    sc.engine.budget = MemoryBudget::mib(50);
    sc.engine.faults = Some(FaultPlan {
        seed: 1,
        pressure: vec![PressureWindow {
            from: VirtualTime::from_secs(30),
            until: VirtualTime::from_secs(40),
            bytes: 60 * 1024 * 1024, // alone exceeds the 50 MiB budget
        }],
        ..FaultPlan::default()
    });
    let r = Executor::try_new(
        &sc.query,
        sc.workload(),
        IndexingMode::Scan,
        sc.engine.clone(),
    )
    .expect("valid engine configuration")
    .run();
    let RunOutcome::OutOfMemory { at } = r.outcome else {
        panic!("injected pressure must breach the budget: {:?}", r.outcome);
    };
    assert!(
        at >= VirtualTime::from_secs(30) && at <= VirtualTime::from_secs(31),
        "death must land on the first grid point inside the window, got {at}"
    );
}

/// Pressure that leaves headroom below the budget is survivable under a
/// `DegradationPolicy`: the governor evicts state, bounds the backlog and
/// the run finishes `Degraded` instead of dying.
#[test]
fn governor_rides_out_survivable_pressure() {
    let mut sc = paper_scenario(Scale::Quick, 42);
    sc.engine.budget = MemoryBudget::mib(50);
    sc.engine.degradation = Some(DegradationPolicy {
        high_water: 0.9,
        low_water: 0.7,
        max_backlog: 512,
        shedding: SheddingPolicy::DropOldest,
        seed: 2,
    });
    sc.engine.faults = Some(FaultPlan {
        seed: 1,
        pressure: vec![PressureWindow {
            from: VirtualTime::from_secs(30),
            until: VirtualTime::from_secs(35),
            bytes: 49 * 1024 * 1024, // over high-water, under the budget
        }],
        ..FaultPlan::default()
    });
    let r = Executor::try_new(
        &sc.query,
        sc.workload(),
        IndexingMode::Scan,
        sc.engine.clone(),
    )
    .expect("valid engine configuration")
    .run();
    let RunOutcome::Degraded { evicted_tuples, .. } = r.outcome else {
        panic!("the governed run must survive degraded: {:?}", r.outcome);
    };
    assert!(evicted_tuples > 0, "pressure must have forced eviction");
    assert_eq!(
        r.final_time,
        VirtualTime::ZERO + sc.engine.duration,
        "survived to the workload's end"
    );
    // Degraded replay is just as deterministic.
    let again = Executor::try_new(
        &sc.query,
        sc.workload(),
        IndexingMode::Scan,
        sc.engine.clone(),
    )
    .expect("valid engine configuration")
    .run();
    assert_eq!(format!("{r:#?}"), format!("{again:#?}"));
}

/// Clock skew through the `Clock` seam: a fast-running clock makes every
/// modeled cost more expensive, deterministically shrinking throughput.
#[test]
fn skewed_clocks_are_deterministic_and_slow_the_engine() {
    let run_skewed = |rate_ppm: u64| {
        let sc = paper_scenario(Scale::Quick, 42);
        Executor::try_new(
            &sc.query,
            sc.workload(),
            IndexingMode::Scan,
            sc.engine.clone(),
        )
        .expect("valid engine configuration")
        .into_pipeline_with_clock(SkewedClock::new(VirtualClock::new(), rate_ppm))
        .run()
    };
    let neutral = run_skewed(1_000_000);
    // 1.5x skew still leaves the quick-scale engine under capacity, so the
    // stress case runs the clock 50x fast — every modeled cost balloons
    // until the probe path can no longer drain the backlog by the deadline.
    let fast = run_skewed(50_000_000);
    let fast_again = run_skewed(50_000_000);
    assert_eq!(
        format!("{fast:#?}"),
        format!("{fast_again:#?}"),
        "skewed runs replay identically"
    );
    let base = run_with_faults(None, 42);
    assert_eq!(
        neutral.outputs, base.outputs,
        "a 1.0-rate skew wrapper is a no-op"
    );
    assert!(
        fast.outputs < base.outputs,
        "a clock running 50x fast must lower throughput: {} vs {}",
        fast.outputs,
        base.outputs
    );
}
