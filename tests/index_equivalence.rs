//! The load-bearing correctness property of the whole evaluation: all four
//! index flavors are *interchangeable* — any interleaving of inserts,
//! expirations, migrations/retargets and searches yields identical answers
//! from the bit-address index, the multi-hash module, and the scan
//! reference. Figures compare their costs; this file pins their semantics.

use amri_core::{BitAddressIndex, CostReceipt, IndexConfig, MultiHashIndex, ScanIndex, StateStore};
use amri_stream::{
    AccessPattern, AttrId, AttrVec, SearchRequest, StreamId, Tuple, TupleId, VirtualTime,
    WindowSpec,
};
use proptest::prelude::*;

/// One scripted operation over a state.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a tuple with the given JAS values at the given second.
    Insert([u64; 3], u64),
    /// Expire at the given second.
    Expire(u64),
    /// Search with (pattern mask, values).
    Search(u32, [u64; 3]),
    /// Migrate the bit-address index / retarget the hash module.
    Adapt(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (proptest::array::uniform3(0u64..6), 0u64..40).prop_map(|(v, t)| Op::Insert(v, t)),
        (0u64..60).prop_map(Op::Expire),
        (0u32..8, proptest::array::uniform3(0u64..6)).prop_map(|(m, v)| Op::Search(m, v)),
        (0u8..6).prop_map(Op::Adapt),
    ]
}

/// Time must be monotone for window pushes: scripts carry arbitrary times,
/// so we run them through a monotonic clock (max-so-far).
struct Runner<I: amri_core::StateIndex> {
    store: StateStore<I>,
    now: u64,
    seq: u64,
}

impl<I: amri_core::StateIndex> Runner<I> {
    fn new(index: I) -> Self {
        Runner {
            store: StateStore::new(
                StreamId(0),
                vec![AttrId(0), AttrId(1), AttrId(2)],
                WindowSpec::secs(20),
                index,
            ),
            now: 0,
            seq: 0,
        }
    }

    fn insert(&mut self, vals: [u64; 3], t: u64) {
        self.now = self.now.max(t);
        let tuple = Tuple::new(
            TupleId(self.seq),
            StreamId(0),
            VirtualTime::from_secs(self.now),
            AttrVec::from_slice(&vals).unwrap(),
        );
        self.seq += 1;
        self.store.insert(tuple, &mut CostReceipt::new());
    }

    fn expire(&mut self, t: u64) {
        self.now = self.now.max(t);
        self.store
            .expire(VirtualTime::from_secs(self.now), &mut CostReceipt::new());
    }

    fn search(&self, mask: u32, vals: [u64; 3]) -> Vec<u64> {
        let req = SearchRequest::new(
            AccessPattern::new(mask, 3),
            AttrVec::from_slice(&vals).unwrap(),
        );
        let mut scratch = amri_core::SearchScratch::new();
        self.store
            .search_into(&req, &mut scratch, &mut CostReceipt::new());
        let mut keys = scratch.hits;
        keys.sort();
        keys.iter()
            .map(|k| self.store.tuple(*k).unwrap().id.0)
            .collect()
    }
}

/// The six migration targets exercised by `Op::Adapt`.
fn config(i: u8) -> IndexConfig {
    let bits = match i % 6 {
        0 => vec![4, 4, 4],
        1 => vec![12, 0, 0],
        2 => vec![0, 0, 10],
        3 => vec![1, 1, 1],
        4 => vec![8, 8, 0],
        _ => vec![0, 0, 0],
    };
    IndexConfig::new(bits).unwrap()
}

fn hash_patterns(i: u8) -> Vec<AccessPattern> {
    let masks: &[u32] = match i % 6 {
        0 => &[0b001, 0b010, 0b100],
        1 => &[0b001],
        2 => &[0b100, 0b110],
        3 => &[0b111],
        4 => &[0b011, 0b101, 0b110, 0b111],
        _ => &[0b010],
    };
    masks.iter().map(|&m| AccessPattern::new(m, 3)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_flavors_agree_on_random_scripts(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut bitaddr = Runner::new(BitAddressIndex::new(config(0)));
        let mut hash = Runner::new(MultiHashIndex::new(hash_patterns(0)));
        let mut scan = Runner::new(ScanIndex::new());
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(vals, t) => {
                    bitaddr.insert(vals, t);
                    hash.insert(vals, t);
                    scan.insert(vals, t);
                }
                Op::Expire(t) => {
                    bitaddr.expire(t);
                    hash.expire(t);
                    scan.expire(t);
                }
                Op::Search(mask, vals) => {
                    let want = scan.search(mask, vals);
                    prop_assert_eq!(
                        &bitaddr.search(mask, vals), &want,
                        "bit-address diverged at step {}", step
                    );
                    prop_assert_eq!(
                        &hash.search(mask, vals), &want,
                        "multi-hash diverged at step {}", step
                    );
                }
                Op::Adapt(i) => {
                    bitaddr
                        .store
                        .index_mut()
                        .migrate(config(i), &mut CostReceipt::new());
                    let live: Vec<(amri_core::TupleKey, AttrVec)> = hash
                        .store
                        .iter_jas()
                        .map(|(k, v)| (k, *v))
                        .collect();
                    hash.store.index_mut().retarget(
                        hash_patterns(i),
                        live.iter().map(|(k, v)| (*k, v)),
                        &mut CostReceipt::new(),
                    );
                }
            }
        }
        // Terminal cross-check over every pattern and a value grid.
        for mask in 0..8u32 {
            for v in 0..6u64 {
                let vals = [v, (v + 1) % 6, (v + 2) % 6];
                let want = scan.search(mask, vals);
                prop_assert_eq!(&bitaddr.search(mask, vals), &want);
                prop_assert_eq!(&hash.search(mask, vals), &want);
            }
        }
        prop_assert_eq!(bitaddr.store.len(), scan.store.len());
        prop_assert_eq!(hash.store.len(), scan.store.len());
    }
}
