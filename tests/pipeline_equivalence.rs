//! Behavior pin for the runtime split: the batch-first `Pipeline` must
//! produce **byte-identical** results to the pre-refactor monolithic
//! executor loop.
//!
//! `reference_run` below is a frozen copy of the original
//! `Executor::run()` (commit d32ca61, before the operator/pipeline
//! split): single `VecDeque<Job>` backlog, inlined sampling/tuning on the
//! grid, inlined ingest and one-job probe. It must **never** be edited to
//! track runtime changes — it *is* the baseline. Each test drives the
//! frozen loop and `Executor::run()` (which now builds the operator
//! pipeline) on identical scenarios and compares the full-precision
//! `Debug` rendering of the two `RunResult`s, which covers every field —
//! series samples, cost-derived final times, retune records, f64 latency
//! and pattern frequencies — so any drift in ordering, cost accounting or
//! clock advancement fails the assert.

use amri_core::assess::{Assessor, AssessorKind, Sria};
use amri_core::{layout, CostReceipt, IndexConfig};
use amri_engine::{
    EngineConfig, Executor, HashTuner, IndexingMode, JoinState, MemoryBudget, MemoryReport,
    RetuneRecord, Router, RunOutcome, RunResult, Stem, StreamWorkload, ThroughputSeries,
};
use amri_hh::CombineStrategy;
use amri_stream::{
    AccessPattern, PartialTuple, SearchRequest, SpjQuery, StreamId, Tuple, TupleId, VirtualClock,
    VirtualDuration, VirtualTime,
};
use amri_synth::scenario::{paper_scenario, Scale};
use std::collections::VecDeque;

/// Mirror of the runtime's output-digest fold — a pure observer over the
/// completed-output stream, so it cannot perturb the frozen loop's
/// behavior; it only lets the baseline fill `RunResult::output_digest`.
fn digest_fold(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95)
}

/// One routing job, as the pre-refactor loop represented it.
#[derive(Debug, Clone, Copy)]
struct Job {
    pt: PartialTuple,
    origin_ts: VirtualTime,
    enqueued: VirtualTime,
}

/// Frozen copy of the pre-refactor `Executor` state and construction.
struct Reference<W> {
    query: SpjQuery,
    graph: amri_stream::JoinGraph,
    workload: W,
    stems: Vec<Stem>,
    router: Router,
    config: EngineConfig,
    mode_label: String,
    observers: Vec<Sria>,
}

impl<W: StreamWorkload> Reference<W> {
    fn new(query: &SpjQuery, workload: W, mode: IndexingMode, config: EngineConfig) -> Self {
        let graph = query.join_graph();
        let n = query.n_streams();
        let mode_label = mode.label();
        let mut stems = Vec::with_capacity(n);
        for i in 0..n {
            let sid = StreamId(i as u16);
            let jas = query.jas(sid);
            let width = jas.len();
            let window = query.windows[i];
            let payload = query.schemas[i].payload_bytes;
            let state = match &mode {
                IndexingMode::Amri { assessor, initial } => {
                    let init = initial.as_ref().map(|v| v[i].clone()).unwrap_or_else(|| {
                        IndexConfig::even(width, config.tuner.total_bits).expect("≤64 bits")
                    });
                    JoinState::amri(
                        sid,
                        jas,
                        window,
                        *assessor,
                        init,
                        config.tuner,
                        config.params,
                        payload,
                        config.tuner_kind,
                    )
                    .expect("valid tuner parameters")
                }
                IndexingMode::AdaptiveHash { n_indices, initial } => {
                    let patterns = initial.as_ref().map(|v| v[i].clone()).unwrap_or_else(|| {
                        AccessPattern::all(width)
                            .filter(|p| !p.is_empty())
                            .take(*n_indices)
                            .collect()
                    });
                    let tuner = HashTuner::new(
                        AssessorKind::Cdia(CombineStrategy::HighestCount),
                        width,
                        *n_indices,
                        config.tuner,
                    );
                    JoinState::multi_hash(sid, jas, window, patterns, Some(tuner), payload)
                }
                IndexingMode::StaticBitmap { configs } => {
                    let init = configs.as_ref().map(|v| v[i].clone()).unwrap_or_else(|| {
                        IndexConfig::even(width, config.tuner.total_bits).expect("≤64 bits")
                    });
                    JoinState::static_bitmap(sid, jas, window, init, payload)
                }
                IndexingMode::Scan => JoinState::scan(sid, jas, window, payload),
            };
            stems.push(Stem::new(sid, state));
        }
        let observers = (0..n)
            .map(|i| Sria::new(query.jas(StreamId(i as u16)).len()))
            .collect();
        Reference {
            query: query.clone(),
            graph,
            workload,
            stems,
            router: Router::new(config.policy, n, config.seed ^ 0x5EED_0001),
            config,
            mode_label,
            observers,
        }
    }

    fn lambda_at(&self, t: VirtualTime) -> f64 {
        self.config.lambda_d * (1.0 + self.config.lambda_ramp * t.as_secs_f64())
    }

    fn memory_report(&self, backlog_len: usize) -> MemoryReport {
        let states: u64 = self.stems.iter().map(|s| s.state.memory_bytes()).sum();
        let arity = self
            .query
            .schemas
            .iter()
            .map(|s| s.arity())
            .max()
            .unwrap_or(0);
        MemoryReport {
            states,
            backlog: backlog_len as u64
                * layout::queued_request_bytes(self.query.n_streams(), arity),
            phantom: 0,
            spilled: 0,
            cache: 0,
        }
    }

    /// The pre-refactor run loop, verbatim.
    fn run(mut self) -> RunResult {
        let n = self.query.n_streams();
        let deadline = VirtualTime::ZERO + self.config.duration;
        let mut clock = VirtualClock::new();
        let mut series = ThroughputSeries::new(self.config.sample_interval);
        let mut retunes: Vec<RetuneRecord> = Vec::new();
        let mut backlog: VecDeque<Job> = VecDeque::new();
        let base_gap = VirtualDuration::from_secs_f64(1.0 / self.config.lambda_d);
        let mut next_arrival: Vec<VirtualTime> = (0..n)
            .map(|i| VirtualTime(base_gap.0 * i as u64 / n as u64))
            .collect();
        let mut outputs: u64 = 0;
        let mut output_digest: u64 = 0;
        let mut tuple_seq: u64 = 0;
        let mut sojourn_ticks: u64 = 0;
        let mut jobs_processed: u64 = 0;
        let mut outcome = RunOutcome::Completed;
        let window_secs: Vec<f64> = self
            .query
            .windows
            .iter()
            .map(|w| w.length.as_secs_f64())
            .collect();

        'run: loop {
            let now = clock.now();
            while series.next_due() <= now {
                let due = series.next_due();
                let report = self.memory_report(backlog.len());
                series.record_until(due, outputs, report.total(), backlog.len() as u64);
                if report.over(self.config.budget) {
                    outcome = RunOutcome::OutOfMemory { at: due };
                    break 'run;
                }
                let elapsed = due.as_secs_f64().max(1.0);
                let lambda_now =
                    self.config.lambda_d * (1.0 + self.config.lambda_ramp * due.as_secs_f64());
                for (i, stem) in self.stems.iter_mut().enumerate() {
                    let lambda_r = stem.requests_served as f64 / elapsed;
                    let mut receipt = CostReceipt::new();
                    if let Some(r) = stem.state.maybe_retune(
                        due,
                        lambda_now,
                        lambda_r,
                        window_secs[i],
                        &mut receipt,
                    ) {
                        retunes.push(RetuneRecord {
                            t: due,
                            state: i as u16,
                            config: r.description,
                            moved: r.moved,
                        });
                    }
                    clock.advance(self.config.params.ticks(&receipt));
                }
            }
            if clock.now() >= deadline {
                break 'run;
            }

            let now = clock.now();
            let mut ingested = false;
            #[allow(clippy::needless_range_loop)]
            for s in 0..n {
                while next_arrival[s] <= now {
                    ingested = true;
                    let ts = next_arrival[s];
                    let gap = VirtualDuration::from_secs_f64(1.0 / self.lambda_at(ts).max(1e-9));
                    next_arrival[s] = ts + gap;
                    let sid = StreamId(s as u16);
                    let attrs = self.workload.attrs_for(sid, ts);
                    if !self.query.passes_selections(sid, attrs.as_slice()) {
                        continue;
                    }
                    let tuple = Tuple::new(TupleId(tuple_seq), sid, ts, attrs);
                    tuple_seq += 1;
                    let mut receipt = CostReceipt::new();
                    self.stems[s].state.expire(now, &mut receipt);
                    self.stems[s].state.insert(tuple, &mut receipt);
                    clock.advance(self.config.params.ticks(&receipt));
                    backlog.push_back(Job {
                        pt: PartialTuple::from_base(&tuple),
                        origin_ts: ts,
                        enqueued: now,
                    });
                }
            }

            if let Some(job) = backlog.pop_front() {
                let pt = job.pt;
                sojourn_ticks += clock.now().since(job.enqueued).0;
                jobs_processed += 1;
                let target = self.router.choose_next(pt.covered);
                let (pattern, values, residual) = self.graph.probe_values(&pt, target);
                let req = SearchRequest::new(pattern, values);
                self.observers[target.idx()].record(pattern);
                let mut receipt = CostReceipt::new();
                let stem = &mut self.stems[target.idx()];
                stem.state
                    .search_into(&req, &mut stem.scratch, &mut receipt);
                stem.requests_served += 1;
                let window = self.query.windows[target.idx()];
                let now = clock.now();
                let mut matches = 0usize;
                for &key in &stem.scratch.hits {
                    let Some(t) = stem.state.tuple(key) else {
                        continue;
                    };
                    if !window.live(t.ts, now) {
                        continue;
                    }
                    if t.ts >= job.origin_ts {
                        continue;
                    }
                    let ok = residual.iter().all(|b| {
                        let lhs = t.attrs[self.graph.jas(target)[b.jas_pos].idx()];
                        let rhs = pt.part(b.src_stream).expect("covered")[b.src_attr.idx()];
                        b.op.eval(lhs, rhs)
                    });
                    if !ok {
                        continue;
                    }
                    matches += 1;
                    let extended = pt.extend(target, t.attrs, t.ts);
                    if extended.is_complete(n) {
                        outputs += 1;
                        let mut h = digest_fold(output_digest, job.origin_ts.0);
                        for s in 0..n {
                            if let Some(part) = extended.part(StreamId(s as u16)) {
                                for &v in part.as_slice() {
                                    h = digest_fold(h, v);
                                }
                            }
                        }
                        output_digest = h;
                    } else {
                        backlog.push_back(Job {
                            pt: extended,
                            origin_ts: job.origin_ts,
                            enqueued: now,
                        });
                    }
                }
                stem.matches_returned += matches as u64;
                let ticks = self.config.params.ticks(&receipt);
                self.router.observe(target, matches, ticks.0);
                clock.advance(ticks);
            } else if !ingested {
                let next = next_arrival
                    .iter()
                    .min()
                    .copied()
                    .expect("at least one stream");
                clock.advance_to(next.min(deadline));
                if clock.now() >= deadline {
                    let report = self.memory_report(backlog.len());
                    series.record_until(deadline, outputs, report.total(), backlog.len() as u64);
                    break 'run;
                }
            }
        }

        let pattern_stats = self.observers.iter().map(|o| o.frequent(0.0)).collect();
        RunResult {
            label: self.mode_label,
            mean_job_latency_ticks: if jobs_processed == 0 {
                0.0
            } else {
                sojourn_ticks as f64 / jobs_processed as f64
            },
            final_time: clock.now().min(deadline),
            series,
            outcome,
            outputs,
            retunes,
            pattern_stats,
            requests: self.stems.iter().map(|s| s.requests_served).collect(),
            degradation: Default::default(),
            faults: Default::default(),
            spill: Default::default(),
            output_digest,
        }
    }
}

/// Run a scenario through both loops and require byte-identical results.
fn assert_equivalent(mode: IndexingMode, scale: Scale, seed: u64, truncate: Option<u64>) {
    let mut sc = paper_scenario(scale, seed);
    if let Some(secs) = truncate {
        sc.engine.duration = VirtualDuration::from_secs(secs);
    }
    let old = Reference::new(&sc.query, sc.workload(), mode.clone(), sc.engine.clone()).run();
    let new = Executor::try_new(&sc.query, sc.workload(), mode.clone(), sc.engine.clone())
        .expect("valid engine configuration")
        .run();
    assert_eq!(
        format!("{old:#?}"),
        format!("{new:#?}"),
        "pipeline diverged from the frozen reference ({}, {scale:?}, seed {seed})",
        mode.label()
    );
}

#[test]
fn paper_scale_amri_is_byte_identical() {
    // The §V configuration (28 virtual minutes) truncated to its first two
    // minutes — long enough to cross 120 sampling grid points, retunes and
    // the first drift phases, short enough for a test.
    assert_equivalent(
        IndexingMode::Amri {
            assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
            initial: None,
        },
        Scale::Paper,
        42,
        Some(120),
    );
}

#[test]
fn quick_scale_all_four_modes_are_byte_identical() {
    for mode in [
        IndexingMode::Amri {
            assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
            initial: None,
        },
        IndexingMode::AdaptiveHash {
            n_indices: 3,
            initial: None,
        },
        IndexingMode::StaticBitmap { configs: None },
        IndexingMode::Scan,
    ] {
        assert_equivalent(mode, Scale::Quick, 7, None);
    }
}

/// Run one scenario at `shards = 4` with `parallelism` 1 and 4 and
/// require byte-identical results: the deterministic shard-then-slot
/// merge makes thread count an implementation detail, not an observable.
fn assert_parallelism_invariant(
    mode: IndexingMode,
    scale: Scale,
    seed: u64,
    truncate: Option<u64>,
) {
    let mut sc = paper_scenario(scale, seed);
    if let Some(secs) = truncate {
        sc.engine.duration = VirtualDuration::from_secs(secs);
    }
    sc.engine.shards = 4;
    sc.engine.parallelism = std::num::NonZeroUsize::MIN;
    let seq = Executor::try_new(&sc.query, sc.workload(), mode.clone(), sc.engine.clone())
        .expect("valid engine configuration")
        .run();
    sc.engine.parallelism = std::num::NonZeroUsize::new(4).unwrap();
    let par = Executor::try_new(&sc.query, sc.workload(), mode.clone(), sc.engine.clone())
        .expect("valid engine configuration")
        .run();
    assert_eq!(
        format!("{seq:#?}"),
        format!("{par:#?}"),
        "parallelism=4 diverged from parallelism=1 ({}, {scale:?}, seed {seed})",
        mode.label()
    );
}

#[test]
fn paper_scale_parallelism_is_byte_identical() {
    // The §V configuration truncated exactly like the frozen-reference
    // pin above: 120 grid points, retunes, the first drift phases.
    assert_parallelism_invariant(
        IndexingMode::Amri {
            assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
            initial: None,
        },
        Scale::Paper,
        42,
        Some(120),
    );
}

#[test]
fn quick_scale_parallelism_is_byte_identical_in_all_four_modes() {
    for mode in [
        IndexingMode::Amri {
            assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
            initial: None,
        },
        IndexingMode::AdaptiveHash {
            n_indices: 3,
            initial: None,
        },
        IndexingMode::StaticBitmap { configs: None },
        IndexingMode::Scan,
    ] {
        assert_parallelism_invariant(mode, Scale::Quick, 7, None);
    }
}

#[test]
fn governed_degradation_parallelism_is_byte_identical() {
    // Sharded + threaded execution must not perturb the governor: shed
    // and eviction decisions hang off memory reports and backlog lengths,
    // both of which the deterministic merge keeps identical.
    let mut sc = paper_scenario(Scale::Quick, 42);
    sc.engine.budget = MemoryBudget { bytes: 150_000 };
    sc.engine.degradation = Some(amri_engine::DegradationPolicy {
        high_water: 0.9,
        low_water: 0.7,
        max_backlog: 512,
        shedding: amri_engine::SheddingPolicy::DropOldest,
        seed: 1,
    });
    sc.engine.shards = 4;
    let mode = IndexingMode::Amri {
        assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
        initial: None,
    };
    sc.engine.parallelism = std::num::NonZeroUsize::MIN;
    let seq = Executor::try_new(&sc.query, sc.workload(), mode.clone(), sc.engine.clone())
        .expect("valid engine configuration")
        .run();
    sc.engine.parallelism = std::num::NonZeroUsize::new(4).unwrap();
    let par = Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
        .run();
    assert!(
        matches!(seq.outcome, RunOutcome::Degraded { .. }),
        "the tight budget must force governed degradation: {:?}",
        seq.outcome
    );
    assert_eq!(format!("{seq:#?}"), format!("{par:#?}"));
}

#[test]
fn oom_death_is_byte_identical() {
    // A budget tight enough to kill hash-7 mid-run: the death instant and
    // the truncated series must match exactly through the new pipeline.
    let mut sc = paper_scenario(Scale::Quick, 42);
    sc.engine.budget = MemoryBudget { bytes: 300_000 };
    let mode = IndexingMode::AdaptiveHash {
        n_indices: 7,
        initial: None,
    };
    let old = Reference::new(&sc.query, sc.workload(), mode.clone(), sc.engine.clone()).run();
    let new = Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
        .run();
    assert!(
        matches!(old.outcome, RunOutcome::OutOfMemory { .. }),
        "the tight budget must kill the reference run: {:?}",
        old.outcome
    );
    assert_eq!(format!("{old:#?}"), format!("{new:#?}"));
}
