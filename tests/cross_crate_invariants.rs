//! Property tests spanning crate boundaries: the engine's join answers
//! match a naive reference join, regardless of index flavor, policy or
//! drift.

use amri_core::assess::AssessorKind;
use amri_core::{CostParams, TunerConfig};
use amri_engine::{EngineConfig, Executor, IndexingMode, MemoryBudget, PolicyKind, StreamWorkload};
use amri_hh::CombineStrategy;
use amri_stream::{
    AttrDomain, AttrId, AttrSpec, AttrVec, JoinPredicate, SpjQuery, StreamId, StreamSchema,
    VirtualDuration, VirtualTime, WindowSpec,
};
use proptest::prelude::*;

/// Replays a fixed per-stream script of attribute values.
struct Scripted {
    script: Vec<Vec<u64>>, // per stream, cyclic
    next: Vec<usize>,
}

impl Scripted {
    fn new(script: Vec<Vec<u64>>) -> Self {
        let n = script.len();
        Scripted {
            script,
            next: vec![0; n],
        }
    }
}

impl StreamWorkload for Scripted {
    fn attrs_for(&mut self, stream: StreamId, _now: VirtualTime) -> AttrVec {
        let s = stream.idx();
        let v = self.script[s][self.next[s] % self.script[s].len()];
        self.next[s] += 1;
        AttrVec::from_slice(&[v]).unwrap()
    }
}

fn pair_query(window_secs: u64) -> SpjQuery {
    let schema = |n: &str| {
        StreamSchema::new(
            n,
            vec![AttrSpec::new("k", AttrDomain::with_cardinality(16))],
            0,
        )
    };
    SpjQuery::new(
        "pair",
        vec![schema("L"), schema("R")],
        vec![JoinPredicate::eq(
            StreamId(0),
            AttrId(0),
            StreamId(1),
            AttrId(0),
        )],
        vec![WindowSpec::secs(window_secs); 2],
    )
    .unwrap()
}

fn engine_config(lambda: f64, secs: u64, policy: PolicyKind) -> EngineConfig {
    EngineConfig {
        duration: VirtualDuration::from_secs(secs),
        sample_interval: VirtualDuration::from_secs(1),
        lambda_d: lambda,
        lambda_ramp: 0.0,
        budget: MemoryBudget::unlimited(),
        policy,
        seed: 5,
        tuner: TunerConfig {
            assess_period: VirtualDuration::from_secs(3),
            min_requests: 20,
            total_bits: 12,
            ..TunerConfig::default()
        },
        tuner_kind: amri_core::TunerKind::default(),
        params: CostParams::default(),
        degradation: None,
        faults: None,
        shards: 1,
        parallelism: std::num::NonZeroUsize::MIN,
        spare_buffer_cap: amri_stream::DEFAULT_MAX_SPARE_BUFFERS,
        spill: None,
    }
}

/// Count the joins a reference nested-loop over the arrival schedule finds:
/// pairs (l, r) with equal keys and each inside the other's window... the
/// engine's window rule is "candidate live at probe time", with the probe
/// happening shortly after the newer tuple arrives; the reference uses
/// |ts_l - ts_r| < window which matches when probes are timely.
fn reference_join_count(script: &[Vec<u64>], lambda: f64, secs: u64, window_secs: u64) -> u64 {
    let gap = 1_000_000.0 / lambda; // ticks between arrivals per stream
    let horizon = secs * 1_000_000;
    let window = window_secs * 1_000_000;
    // Reconstruct arrival schedules: stream s starts at gap*s/2 (matches
    // the executor's stagger for n=2).
    let mut arrivals: Vec<(u64, usize, u64)> = Vec::new(); // (ts, stream, value)
    for (s, vals) in script.iter().enumerate() {
        let offset = (gap as u64) * s as u64 / 2;
        let mut i = 0usize;
        loop {
            let ts = offset + (i as f64 * gap) as u64;
            if ts >= horizon {
                break;
            }
            arrivals.push((ts, s, vals[i % vals.len()]));
            i += 1;
        }
    }
    let mut count = 0;
    for &(t1, s1, v1) in &arrivals {
        for &(t2, s2, v2) in &arrivals {
            if s1 == 0 && s2 == 1 && v1 == v2 {
                let (older, newer) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
                if t1 != t2 && newer - older < window {
                    count += 1;
                }
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every index flavor computes the same two-way join as the reference
    /// nested loop over the same arrival schedule.
    #[test]
    fn engine_matches_reference_join(
        left in proptest::collection::vec(0u64..16, 4..10),
        right in proptest::collection::vec(0u64..16, 4..10),
        flavor in 0usize..4,
    ) {
        let window_secs = 2u64;
        let lambda = 10.0;
        let secs = 8u64;
        let query = pair_query(window_secs);
        let script = vec![left.clone(), right.clone()];
        let mode = match flavor {
            0 => IndexingMode::Amri {
                assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
                initial: None,
            },
            1 => IndexingMode::AdaptiveHash { n_indices: 1, initial: None },
            2 => IndexingMode::StaticBitmap { configs: None },
            _ => IndexingMode::Scan,
        };
        let result = Executor::try_new(
            &query,
            Scripted::new(script.clone()),
            mode,
            engine_config(lambda, secs, PolicyKind::RoundRobin),
        ).expect("valid engine configuration")
        .run();
        let expected = reference_join_count(&script, lambda, secs, window_secs);
        // The engine's probe lag can defer matches at the horizon edge by
        // at most the processing delay; with this light load probes are
        // immediate and counts match exactly.
        prop_assert_eq!(result.outputs, expected,
            "flavor {} disagrees with reference", result.label);
    }

    /// Routing policy never changes the answer of the join, only its cost.
    #[test]
    fn policy_does_not_change_outputs(
        left in proptest::collection::vec(0u64..8, 4..8),
        right in proptest::collection::vec(0u64..8, 4..8),
    ) {
        let query = pair_query(2);
        let script = vec![left, right];
        let mut outs = Vec::new();
        for policy in [
            PolicyKind::RoundRobin,
            PolicyKind::SelectivityGreedy { exploration: 0.2 },
            PolicyKind::Lottery { exploration: 0.1 },
        ] {
            let r = Executor::try_new(
                &query,
                Scripted::new(script.clone()),
                IndexingMode::StaticBitmap { configs: None },
                engine_config(10.0, 6, policy),
            ).expect("valid engine configuration")
            .run();
            outs.push(r.outputs);
        }
        prop_assert_eq!(outs[0], outs[1]);
        prop_assert_eq!(outs[1], outs[2]);
    }
}
