//! End-to-end acceptance for the disk spill tier: a memory budget that
//! kills the all-RAM engine completes under spill with outputs identical
//! to the unconstrained run (the all-zero [`StorageProfile`] makes the
//! tier behaviorally invisible); crash + resume with the tier active is
//! byte-identical to the uninterrupted spilled run; and every injected
//! disk fault ends in recovery or a typed degraded outcome — never a
//! panic — with same-seed replays byte-identical.

use amri_core::assess::AssessorKind;
use amri_engine::{
    load_latest, CheckpointPolicy, Checkpointer, EngineError, Executor, FaultKind, FaultPlan,
    IndexingMode, MemoryBudget, RunOutcome, SpillSettings,
};
use amri_stream::VirtualDuration;
use amri_synth::scenario::{paper_scenario, PaperScenario, Scale};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amri-spill-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A short but non-trivial scenario: long enough to fill windows past any
/// interesting budget, short enough that the mode matrix stays fast.
fn scenario(seed: u64) -> PaperScenario {
    let mut sc = paper_scenario(Scale::Quick, seed);
    sc.engine.duration = VirtualDuration::from_secs(8);
    sc.engine.budget = MemoryBudget::unlimited();
    sc
}

fn executor(sc: &PaperScenario, mode: IndexingMode) -> Executor<amri_synth::DriftingWorkload> {
    Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
}

/// The §V lineup, one representative per flavor.
fn all_modes() -> Vec<(&'static str, IndexingMode)> {
    vec![
        (
            "amri",
            IndexingMode::Amri {
                assessor: AssessorKind::Csria,
                initial: None,
            },
        ),
        (
            "multi-hash",
            IndexingMode::AdaptiveHash {
                n_indices: 3,
                initial: None,
            },
        ),
        (
            "static-bitmap",
            IndexingMode::StaticBitmap { configs: None },
        ),
        ("scan", IndexingMode::Scan),
    ]
}

/// A budget below the mode's unconstrained peak (so the all-RAM run must
/// die) but above its spill-resident floor (so the tier can hold the
/// working set). Stubs and index entries stay in RAM when a tuple
/// spills; multi-hash keeps ~3 hash links per tuple resident, so its
/// floor is much higher than the arena-dominated modes'.
fn forcing_budget(label: &str, peak: u64) -> u64 {
    match label {
        "multi-hash" => peak * 9 / 10,
        _ => peak * 7 / 10,
    }
}

/// The headline guarantee, per indexing mode: a budget below the
/// unconstrained run's peak kills the all-RAM engine, but the same budget
/// with a spill tier completes — and because the identity (all-zero)
/// storage profile charges nothing, the outputs and the order-sensitive
/// output digest are *equal* to the unconstrained run's. Beyond-RAM
/// windows change where state lives, not what the join computes.
#[test]
fn oom_budget_completes_under_spill_with_identical_outputs() {
    let sc = scenario(42);
    for (label, mode) in all_modes() {
        let baseline = executor(&sc, mode.clone()).run();
        assert_eq!(
            baseline.outcome,
            RunOutcome::Completed,
            "{label}: unconstrained baseline must complete"
        );
        assert!(baseline.outputs > 0, "{label}: baseline must produce joins");

        // Any budget under the observed peak kills the all-RAM run —
        // the constrained run walks the identical trajectory up to the
        // breach — while leaving the spill tier room to hold the
        // resident set (stubs are smaller than tuples, but not free).
        let budget = forcing_budget(label, baseline.series.peak_memory());
        let mut constrained = sc.clone();
        constrained.engine.budget = MemoryBudget { bytes: budget };
        let dead = executor(&constrained, mode.clone()).run();
        assert!(
            matches!(dead.outcome, RunOutcome::OutOfMemory { .. }),
            "{label}: a {budget}-byte budget must kill the all-RAM run, got {:?}",
            dead.outcome
        );

        let dir = tmpdir(&format!("oom-{label}"));
        let mut spilled = constrained.clone();
        spilled.engine.spill = Some(SpillSettings::in_dir(&dir));
        let r = executor(&spilled, mode).run();
        assert_eq!(
            r.outcome,
            RunOutcome::Completed,
            "{label}: the same budget must complete under spill"
        );
        assert!(
            r.spill.spilled_tuples > 0,
            "{label}: the tier must actually have spilled"
        );
        assert_eq!(
            (r.outputs, r.output_digest),
            (baseline.outputs, baseline.output_digest),
            "{label}: spill must not change the join answer"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Spilled state participates in checkpoint/restore: a run crashed at an
/// injected step while the tier is active, resumed from the latest good
/// snapshot, is byte-identical (down to the Debug rendering, spill
/// counters included) to the same spilled run left uninterrupted. All
/// three executors share one spill directory — the directory is part of
/// the configuration fingerprint, and restore rewrites the block files
/// from the snapshot's frames.
#[test]
fn crash_and_resume_with_spill_is_byte_identical() {
    let dir = tmpdir("crash");
    for (label, mode) in all_modes() {
        let base = scenario(17);
        let peak = executor(&base, mode.clone()).run().series.peak_memory();
        let budget = forcing_budget(label, peak);
        let mut sc = base;
        sc.engine.budget = MemoryBudget { bytes: budget };
        sc.engine.spill = Some(SpillSettings::in_dir(dir.join(label)));

        let baseline = executor(&sc, mode.clone()).run();
        assert!(
            baseline.spill.spilled_tuples > 0,
            "{label}: the tier must be active for the crash to mean anything"
        );

        let ckpt_dir = dir.join(format!("{label}-ckpt"));
        let exec = executor(&sc, mode.clone());
        let fingerprint = exec.config_fingerprint();
        let mut ckpt = Checkpointer::new(&ckpt_dir, CheckpointPolicy::every(60))
            .unwrap()
            .with_faults(vec![FaultKind::CrashAt { step: 200 }]);
        let died = exec
            .into_pipeline()
            .run_with(Some(&mut ckpt), fingerprint)
            .expect_err("the armed crash must kill the run");
        assert!(
            matches!(died, EngineError::InjectedCrash { step: 200 }),
            "unexpected death: {died}"
        );
        assert!(ckpt.checkpoints_taken() > 0);

        let (snap, report) = load_latest(&ckpt_dir).expect("a good snapshot must exist");
        assert!(report.skipped.is_empty());
        let resumed = executor(&sc, mode)
            .resume_from(&snap)
            .expect("same configuration, same spill dir: snapshot must be accepted")
            .run_with(None, 0)
            .expect("a resumed run without a checkpointer cannot fail");
        assert_eq!(
            format!("{baseline:#?}"),
            format!("{resumed:#?}"),
            "{label}: crash + resume with spill active must be invisible"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A spilled run under an injected torn-write storm: every tear is caught
/// by write-verify and retried, the run still completes with the right
/// answer (tears cost virtual time only when the profile charges any —
/// here it charges none), and a same-seed replay is byte-identical.
#[test]
fn torn_block_writes_are_caught_and_replay_identically() {
    let mode = IndexingMode::Amri {
        assessor: AssessorKind::Csria,
        initial: None,
    };
    let base = scenario(7);
    let baseline = executor(&base, mode.clone()).run();
    let budget = baseline.series.peak_memory() * 7 / 10;
    let dir = tmpdir("torn");
    let mut sc = base;
    sc.engine.budget = MemoryBudget { bytes: budget };
    sc.engine.spill = Some(SpillSettings::in_dir(&dir));
    sc.engine.faults = Some(FaultPlan {
        seed: 77,
        io: amri_core::IoFaultConfig {
            torn_write_prob: 0.25,
            ..Default::default()
        },
        ..FaultPlan::default()
    });

    let run = || executor(&sc, mode.clone()).run();
    let r = run();
    assert!(
        r.spill.torn_writes > 0,
        "the storm must actually tear writes: {:?}",
        r.spill
    );
    assert!(r.spill.spilled_tuples > 0, "the tier must be active");
    // Write-verify + retry absorbs every tear here: nothing is lost, so
    // the run completes un-degraded with the unconstrained answer.
    assert_eq!(r.outcome, RunOutcome::Completed, "tears must be absorbed");
    assert_eq!(
        (r.outputs, r.output_digest),
        (baseline.outputs, baseline.output_digest),
        "caught tears must not change the join answer"
    );
    let replay = run();
    assert_eq!(
        format!("{r:#?}"),
        format!("{replay:#?}"),
        "same seed, same tears: replay must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A spilled run under injected read errors and latency spikes: a block
/// whose read fails twice is lost, which surfaces as a typed
/// [`RunOutcome::Degraded`] carrying `lost_tuples` — never a panic, never
/// a wrong silent answer — and the whole perturbed run replays
/// byte-identically under the same seed.
#[test]
fn lost_blocks_degrade_typed_and_replay_identically() {
    let mode = IndexingMode::Amri {
        assessor: AssessorKind::Csria,
        initial: None,
    };
    let base = scenario(11);
    let budget = executor(&base, mode.clone()).run().series.peak_memory() * 7 / 10;
    let dir = tmpdir("read-err");
    let mut sc = base;
    sc.engine.budget = MemoryBudget { bytes: budget };
    sc.engine.spill = Some(SpillSettings::in_dir(&dir));
    sc.engine.faults = Some(FaultPlan {
        seed: 13,
        io: amri_core::IoFaultConfig {
            read_error_prob: 0.6,
            latency_spike_prob: 0.3,
            spike_ns: 50_000,
            ..Default::default()
        },
        ..FaultPlan::default()
    });

    let run = || executor(&sc, mode.clone()).run();
    let r = run();
    assert!(r.spill.spilled_tuples > 0, "the tier must be active");
    assert!(
        r.spill.read_errors > 0,
        "the storm must actually fail reads: {:?}",
        r.spill
    );
    match r.outcome {
        RunOutcome::Completed => assert_eq!(
            r.spill.lost_blocks, 0,
            "a completed run must not have lost anything"
        ),
        RunOutcome::Degraded { lost_tuples, .. } => {
            assert!(r.spill.lost_blocks > 0, "degradation implies lost blocks");
            assert!(
                lost_tuples > 0,
                "spill loss must surface in the typed outcome"
            );
        }
        other => panic!("disk faults must never turn into {other:?}"),
    }
    let replay = run();
    assert_eq!(
        format!("{r:#?}"),
        format!("{replay:#?}"),
        "same seed, same faults: replay must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The identity contract stated on [`SpillSettings::in_dir`]: with an
/// *unlimited* budget the tier never engages at all, and the run —
/// counters included — is indistinguishable from an engine without one
/// except for the tier's own metadata accounting.
#[test]
fn spill_tier_is_inert_under_an_unlimited_budget() {
    let sc = scenario(3);
    let mode = IndexingMode::Scan;
    let plain = executor(&sc, mode.clone()).run();
    let dir = tmpdir("inert");
    let mut spilled_sc = sc.clone();
    spilled_sc.engine.spill = Some(SpillSettings::in_dir(&dir));
    let r = executor(&spilled_sc, mode).run();
    assert_eq!(r.spill, amri_core::SpillStats::default(), "nothing spills");
    assert_eq!(
        (r.outputs, r.output_digest, r.outcome),
        (plain.outputs, plain.output_digest, plain.outcome),
        "an idle tier is invisible"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `RunResult::death_time` and the spill counters agree with the series:
/// a spilled run records its peak *resident* memory under the budget even
/// though the logical window is bigger than RAM.
#[test]
fn spilled_runs_sample_resident_memory_under_the_budget() {
    let mode = IndexingMode::Scan;
    let base = scenario(5);
    let baseline = executor(&base, mode.clone()).run();
    let budget = baseline.series.peak_memory() * 7 / 10;
    let dir = tmpdir("resident");
    let mut sc = base;
    sc.engine.budget = MemoryBudget { bytes: budget };
    sc.engine.spill = Some(SpillSettings::in_dir(&dir));
    let r = executor(&sc, mode).run();
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert!(
        r.series.peak_memory() <= budget,
        "resident peak {} must respect the {budget}-byte budget",
        r.series.peak_memory()
    );
    assert!(
        r.spill.blocks_written >= 1 && r.spill.spilled_tuples > 0,
        "the overflow must be on disk: {:?}",
        r.spill
    );
    std::fs::remove_dir_all(&dir).ok();
}
