//! Sharded vs unsharded bit-address index equivalence — the correctness
//! half of the multicore tentpole. A sharded arena partitions buckets by
//! the top bits of the bucket id; this file pins that the partitioning is
//! unobservable through the index API: for every shard count in
//! {1, 2, 4, 8} a random interleaving of inserts, searches, migrations,
//! expirations and evictions yields the identical result *set* (order may
//! differ across shard counts — the deterministic-order pin per count
//! lives with the engine's parallelism equivalence tests), identical
//! entry/memory accounting, and a structurally sound arena in every
//! shard after every structural change.

use amri_core::{BitAddressIndex, CostReceipt, IndexConfig, StateStore};
use amri_stream::{
    AccessPattern, AttrId, AttrVec, SearchRequest, StreamId, Tuple, TupleId, VirtualTime,
    WindowSpec,
};
use proptest::prelude::*;

/// One scripted operation over a state.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a tuple with the given JAS values at the given second.
    Insert([u64; 3], u64),
    /// Expire at the given second.
    Expire(u64),
    /// Search with (pattern mask, values).
    Search(u32, [u64; 3]),
    /// Migrate to the i-th target configuration.
    Migrate(u8),
    /// Forcibly evict up to n oldest live tuples (the governor's move).
    Evict(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (proptest::array::uniform3(0u64..6), 0u64..40).prop_map(|(v, t)| Op::Insert(v, t)),
        (proptest::array::uniform3(0u64..6), 0u64..40).prop_map(|(v, t)| Op::Insert(v, t)),
        (0u64..60).prop_map(Op::Expire),
        (0u32..8, proptest::array::uniform3(0u64..6)).prop_map(|(m, v)| Op::Search(m, v)),
        (0u32..8, proptest::array::uniform3(0u64..6)).prop_map(|(m, v)| Op::Search(m, v)),
        (0u8..6).prop_map(Op::Migrate),
        (1u8..8).prop_map(Op::Evict),
    ]
}

/// Migration targets spanning trivial, skewed and wide configurations —
/// including bit widths below the shard bits of the 8-way index, so the
/// "fewer buckets than shards" degeneracy is exercised.
fn config(i: u8) -> IndexConfig {
    let bits = match i % 6 {
        0 => vec![4, 4, 4],
        1 => vec![12, 0, 0],
        2 => vec![0, 0, 10],
        3 => vec![1, 1, 1],
        4 => vec![8, 8, 0],
        _ => vec![0, 0, 0],
    };
    IndexConfig::new(bits).unwrap()
}

/// Monotone-clock script runner over a sharded store (same shape as the
/// cross-flavor equivalence runner).
struct Runner {
    store: StateStore<BitAddressIndex>,
    now: u64,
    seq: u64,
}

impl Runner {
    fn new(shards: usize) -> Self {
        Runner {
            store: StateStore::new(
                StreamId(0),
                vec![AttrId(0), AttrId(1), AttrId(2)],
                WindowSpec::secs(20),
                BitAddressIndex::with_shards(config(0), shards),
            ),
            now: 0,
            seq: 0,
        }
    }

    fn insert(&mut self, vals: [u64; 3], t: u64) {
        self.now = self.now.max(t);
        let tuple = Tuple::new(
            TupleId(self.seq),
            StreamId(0),
            VirtualTime::from_secs(self.now),
            AttrVec::from_slice(&vals).unwrap(),
        );
        self.seq += 1;
        self.store.insert(tuple, &mut CostReceipt::new());
    }

    fn expire(&mut self, t: u64) {
        self.now = self.now.max(t);
        self.store
            .expire(VirtualTime::from_secs(self.now), &mut CostReceipt::new());
    }

    /// Sorted tuple ids matching the request — the shard-count-invariant
    /// answer set.
    fn search(&self, mask: u32, vals: [u64; 3]) -> Vec<u64> {
        let req = SearchRequest::new(
            AccessPattern::new(mask, 3),
            AttrVec::from_slice(&vals).unwrap(),
        );
        let mut scratch = amri_core::SearchScratch::new();
        self.store
            .search_into(&req, &mut scratch, &mut CostReceipt::new());
        let mut ids: Vec<u64> = scratch
            .hits
            .iter()
            .map(|k| self.store.tuple(*k).unwrap().id.0)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Arena integrity across every shard, plus the accounting invariant
    /// that per-shard fill statistics cover exactly the live entries.
    fn check_sound(&self) -> Result<(), String> {
        let index = self.store.index();
        index.check_integrity()?;
        let per_shard: usize = index.shard_fill_stats().iter().map(|f| f.entries).sum();
        if per_shard != amri_core::StateIndex::entries(index) {
            return Err(format!(
                "shard fill stats cover {per_shard} entries, index holds {}",
                amri_core::StateIndex::entries(index)
            ));
        }
        Ok(())
    }

    /// Apply one scripted op to this runner alone (searches are pure and
    /// compared separately by the callers that need them).
    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Insert(vals, t) => self.insert(vals, t),
            Op::Expire(t) => self.expire(t),
            Op::Search(..) => {}
            Op::Migrate(i) => {
                self.store
                    .index_mut()
                    .migrate(config(i), &mut CostReceipt::new());
            }
            Op::Evict(n) => {
                self.store.evict_oldest(n as usize, &mut CostReceipt::new());
            }
        }
    }
}

/// Script runner for the staged-vs-eager write-path comparison: same
/// store shape as [`Runner`], but with an explicit cumulative receipt and
/// an [`amri_core::IngestStage`] when `staged`. The flush discipline
/// mirrors the engine's: inserts and expirations accumulate in the stage
/// across steps; any observation of the index (search, migrate, evict)
/// flushes first — searches through the fused apply-then-probe dispatch,
/// the rest via an explicit `apply_staged`.
struct IngestRunner {
    store: StateStore<BitAddressIndex>,
    stage: amri_core::IngestStage,
    receipt: CostReceipt,
    now: u64,
    seq: u64,
    staged: bool,
}

impl IngestRunner {
    fn new(shards: usize, staged: bool) -> Self {
        IngestRunner {
            store: StateStore::new(
                StreamId(0),
                vec![AttrId(0), AttrId(1), AttrId(2)],
                WindowSpec::secs(20),
                BitAddressIndex::with_shards(config(0), shards),
            ),
            stage: amri_core::IngestStage::new(),
            receipt: CostReceipt::new(),
            now: 0,
            seq: 0,
            staged,
        }
    }

    fn insert(&mut self, vals: [u64; 3], t: u64) {
        self.now = self.now.max(t);
        let tuple = Tuple::new(
            TupleId(self.seq),
            StreamId(0),
            VirtualTime::from_secs(self.now),
            AttrVec::from_slice(&vals).unwrap(),
        );
        self.seq += 1;
        if self.staged {
            self.store
                .insert_staged(tuple, &mut self.receipt, &mut self.stage);
        } else {
            self.store.insert(tuple, &mut self.receipt);
        }
    }

    fn expire(&mut self, t: u64) {
        self.now = self.now.max(t);
        let now = VirtualTime::from_secs(self.now);
        if self.staged {
            self.store
                .expire_staged(now, &mut self.receipt, &mut self.stage);
        } else {
            self.store.expire(now, &mut self.receipt);
        }
    }

    fn flush(&mut self, exec: &dyn amri_core::ShardExecutor) {
        if self.staged {
            self.store.apply_staged(&mut self.stage, exec);
        }
    }

    /// Sorted matching tuple ids; for staged runners the pending stage is
    /// applied and the probe served in one fused dispatch.
    fn search(
        &mut self,
        mask: u32,
        vals: [u64; 3],
        exec: &dyn amri_core::ShardExecutor,
    ) -> Vec<u64> {
        let req = SearchRequest::new(
            AccessPattern::new(mask, 3),
            AttrVec::from_slice(&vals).unwrap(),
        );
        let mut scratch = amri_core::SearchScratch::new();
        if self.staged {
            self.store.apply_staged_then_search(
                &req,
                &mut scratch,
                &mut self.receipt,
                &mut self.stage,
                exec,
            );
        } else {
            self.store
                .search_into(&req, &mut scratch, &mut self.receipt);
        }
        let mut ids: Vec<u64> = scratch
            .hits
            .iter()
            .map(|k| self.store.tuple(*k).unwrap().id.0)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn migrate(&mut self, i: u8, exec: &dyn amri_core::ShardExecutor) {
        self.flush(exec);
        self.store
            .index_mut()
            .migrate_with(config(i), &mut self.receipt, exec);
    }

    fn evict(&mut self, n: usize, exec: &dyn amri_core::ShardExecutor) -> usize {
        self.flush(exec);
        if self.staged {
            self.store.evict_oldest_with(n, &mut self.receipt, exec)
        } else {
            self.store.evict_oldest(n, &mut self.receipt)
        }
    }

    fn check_sound(&self) -> Result<(), String> {
        let index = self.store.index();
        index.check_integrity()?;
        let per_shard: usize = index.shard_fill_stats().iter().map(|f| f.entries).sum();
        if per_shard != amri_core::StateIndex::entries(index) {
            return Err(format!(
                "shard fill stats cover {per_shard} entries, index holds {}",
                amri_core::StateIndex::entries(index)
            ));
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_shard_count_agrees_on_random_scripts(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut runners: Vec<Runner> = [1usize, 2, 4, 8].iter().map(|&s| Runner::new(s)).collect();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(vals, t) => {
                    for r in &mut runners {
                        r.insert(vals, t);
                    }
                }
                Op::Expire(t) => {
                    for r in &mut runners {
                        r.expire(t);
                    }
                }
                Op::Search(mask, vals) => {
                    let want = runners[0].search(mask, vals);
                    for (i, r) in runners.iter().enumerate().skip(1) {
                        prop_assert_eq!(
                            &r.search(mask, vals), &want,
                            "shard count {} diverged at step {}", 1usize << i, step
                        );
                    }
                }
                Op::Migrate(i) => {
                    for r in &mut runners {
                        r.store
                            .index_mut()
                            .migrate(config(i), &mut CostReceipt::new());
                        let sound = r.check_sound();
                        prop_assert!(sound.is_ok(), "after migrate: {:?}", sound);
                    }
                }
                Op::Evict(n) => {
                    let evicted = runners[0]
                        .store
                        .evict_oldest(n as usize, &mut CostReceipt::new());
                    for r in &mut runners[1..] {
                        let e = r.store.evict_oldest(n as usize, &mut CostReceipt::new());
                        prop_assert_eq!(e, evicted, "eviction count diverged");
                        let sound = r.check_sound();
                        prop_assert!(sound.is_ok(), "after evict: {:?}", sound);
                    }
                }
            }
            // Accounting is shard-count-invariant at every step: each
            // bucket lives in exactly one shard.
            let entries = runners[0].store.len();
            let mem = amri_core::StateIndex::memory_bytes(runners[0].store.index());
            for r in &runners[1..] {
                prop_assert_eq!(r.store.len(), entries);
                prop_assert_eq!(amri_core::StateIndex::memory_bytes(r.store.index()), mem);
            }
        }
        // Terminal sweep: every pattern over a value grid, every shard
        // count, one final integrity pass.
        for r in &runners {
            let sound = r.check_sound();
            prop_assert!(sound.is_ok(), "terminal integrity: {:?}", sound);
        }
        for mask in 0..8u32 {
            for v in 0..6u64 {
                let vals = [v, (v + 1) % 6, (v + 2) % 6];
                let want = runners[0].search(mask, vals);
                for r in &runners[1..] {
                    prop_assert_eq!(&r.search(mask, vals), &want);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot → restore round trip at every shard count: a restored
    /// store is structurally sound, reports the same per-shard fill
    /// statistics, answers every probe with the same result set — and
    /// keeps behaving identically when the script continues (slot reuse
    /// and chain order survive the trip verbatim).
    #[test]
    fn snapshot_roundtrip_preserves_arena_and_answers(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        tail in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        use amri_core::snapshot_io::{SectionReader, SectionWriter};
        for shards in [1usize, 2, 4, 8] {
            let mut original = Runner::new(shards);
            for op in &ops {
                original.apply(op);
            }

            let mut w = SectionWriter::new();
            original.store.save_state(&mut w);
            original.store.index().save(&mut w);
            let bytes = w.into_bytes();

            let mut restored = Runner::new(shards);
            let mut r = SectionReader::new(&bytes);
            restored.store.restore_state(&mut r).expect("state section");
            *restored.store.index_mut() =
                BitAddressIndex::restore(&mut r).expect("index section");
            prop_assert_eq!(r.remaining(), 0, "trailing bytes at {} shards", shards);
            restored.now = original.now;
            restored.seq = original.seq;

            let sound = restored.check_sound();
            prop_assert!(sound.is_ok(), "restored integrity: {:?}", sound);
            prop_assert_eq!(restored.store.len(), original.store.len());
            prop_assert_eq!(
                format!("{:?}", restored.store.index().shard_fill_stats()),
                format!("{:?}", original.store.index().shard_fill_stats()),
                "fill statistics diverged at {} shards", shards
            );
            for mask in 0..8u32 {
                for v in 0..6u64 {
                    let vals = [v, (v + 1) % 6, (v + 2) % 6];
                    prop_assert_eq!(
                        restored.search(mask, vals),
                        original.search(mask, vals),
                        "probe diverged at {} shards", shards
                    );
                }
            }

            // The trip must also preserve unobservable bookkeeping
            // (free-list order, bucket chains): continuing the script on
            // both sides must stay in lockstep.
            for op in &tail {
                original.apply(op);
                restored.apply(op);
                if let Op::Search(mask, vals) = *op {
                    prop_assert_eq!(
                        restored.search(mask, vals),
                        original.search(mask, vals),
                        "post-restore script diverged at {} shards", shards
                    );
                }
            }
            let sound = restored.check_sound();
            prop_assert!(sound.is_ok(), "post-restore integrity: {:?}", sound);
        }
    }

    /// Tentpole write-path invariance: the staged parallel ingest path —
    /// `insert_staged`/`expire_staged` accumulating an [`IngestStage`],
    /// flushed through a real 2-thread `WorkerPool` or the inline
    /// `SequentialExecutor`, with fused apply+search, batched eviction and
    /// parallel migration — must be indistinguishable from the eager,
    /// unsharded, sequential reference: identical result sets, identical
    /// cumulative cost receipts after every op, identical live-tuple
    /// counts, and a structurally sound arena at every flush point.
    #[test]
    fn staged_parallel_ingest_matches_sequential_eager(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        use amri_core::{SequentialExecutor, ShardExecutor};
        use amri_engine::WorkerPool;

        let pool = WorkerPool::new(std::num::NonZeroUsize::new(2).unwrap());
        let seq_exec = SequentialExecutor;

        let mut reference = IngestRunner::new(1, false);
        // Staged candidates at every shard count; alternate real-pool and
        // inline executors so both dispatch paths are exercised.
        let mut candidates: Vec<IngestRunner> = [1usize, 2, 4, 8]
            .iter()
            .map(|&s| IngestRunner::new(s, true))
            .collect();
        let execs: [&dyn ShardExecutor; 2] = [&pool, &seq_exec];

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(vals, t) => {
                    reference.insert(vals, t);
                    for c in &mut candidates {
                        c.insert(vals, t);
                    }
                }
                Op::Expire(t) => {
                    reference.expire(t);
                    for c in &mut candidates {
                        c.expire(t);
                    }
                }
                Op::Search(mask, vals) => {
                    let want = reference.search(mask, vals, &seq_exec);
                    for (i, c) in candidates.iter_mut().enumerate() {
                        let got = c.search(mask, vals, execs[i % 2]);
                        prop_assert_eq!(
                            &got, &want,
                            "staged search diverged at step {} ({} shards)",
                            step, 1usize << i
                        );
                    }
                }
                Op::Migrate(i) => {
                    reference.migrate(i, &seq_exec);
                    for (ci, c) in candidates.iter_mut().enumerate() {
                        c.migrate(i, execs[ci % 2]);
                        let sound = c.check_sound();
                        prop_assert!(sound.is_ok(), "after staged migrate: {:?}", sound);
                    }
                }
                Op::Evict(n) => {
                    let want = reference.evict(n as usize, &seq_exec);
                    for (ci, c) in candidates.iter_mut().enumerate() {
                        let got = c.evict(n as usize, execs[ci % 2]);
                        prop_assert_eq!(got, want, "staged eviction count diverged");
                        let sound = c.check_sound();
                        prop_assert!(sound.is_ok(), "after staged evict: {:?}", sound);
                    }
                }
            }
            // Cost accounting is path-invariant at every step: staged ops
            // charge at stage time, exactly what eager execution charges.
            // Live-tuple counts agree too (the arena half is never
            // deferred). Index-internal views (entries, memory) are only
            // comparable at flush points — see the terminal sweep.
            for c in &candidates {
                prop_assert_eq!(
                    c.receipt, reference.receipt,
                    "receipts diverged at step {}", step
                );
                prop_assert_eq!(c.store.len(), reference.store.len());
            }
        }

        // Terminal sweep: flush everything, then the staged stores must be
        // indistinguishable from the eager reference in every observable.
        for (ci, c) in candidates.iter_mut().enumerate() {
            c.flush(execs[ci % 2]);
        }
        for c in &mut candidates {
            let sound = c.check_sound();
            prop_assert!(sound.is_ok(), "terminal staged integrity: {:?}", sound);
            prop_assert_eq!(
                amri_core::StateIndex::entries(c.store.index()),
                amri_core::StateIndex::entries(reference.store.index())
            );
            prop_assert_eq!(
                amri_core::StateIndex::memory_bytes(c.store.index()),
                amri_core::StateIndex::memory_bytes(reference.store.index())
            );
        }
        for mask in 0..8u32 {
            for v in 0..6u64 {
                let vals = [v, (v + 1) % 6, (v + 2) % 6];
                let want = reference.search(mask, vals, &seq_exec);
                for (ci, c) in candidates.iter_mut().enumerate() {
                    prop_assert_eq!(
                        c.search(mask, vals, execs[ci % 2]),
                        want.clone(),
                        "terminal staged probe diverged"
                    );
                }
            }
        }
    }

    /// Collector round trip: every assessment method restored from a
    /// snapshot reports the same frequent set at every threshold, the
    /// same totals — and re-saves to identical bytes.
    #[test]
    fn collector_roundtrip_preserves_frequent_answers(
        masks in proptest::collection::vec(1u32..8, 1..400),
        theta in 0.0f64..0.6,
    ) {
        use amri_core::assess::AssessorKind;
        use amri_core::snapshot_io::{SectionReader, SectionWriter};
        for kind in AssessorKind::figure6_lineup() {
            let mut a = kind.build(3, 0.001, 7);
            for &m in &masks {
                a.record(AccessPattern::new(m, 3));
            }
            let mut w = SectionWriter::new();
            a.save(&mut w);
            let bytes = w.into_bytes();

            let mut b = kind.build(3, 0.001, 7);
            let mut r = SectionReader::new(&bytes);
            b.load(&mut r).expect("collector section");
            prop_assert_eq!(r.remaining(), 0);
            prop_assert_eq!(a.n(), b.n());
            prop_assert_eq!(a.entries(), b.entries());
            prop_assert_eq!(
                a.frequent(theta), b.frequent(theta),
                "{} diverged at theta {}", kind.label(), theta
            );
            let mut w2 = SectionWriter::new();
            b.save(&mut w2);
            prop_assert_eq!(bytes, w2.into_bytes(), "re-save must be byte-identical");
        }
    }
}
