//! Integration test for `EXP-T2-EXAMPLE`: the Table II worked example of
//! §IV-C2 / §IV-D2 reproduced end to end across `amri-hh`, `amri-core`
//! and the harness.

use amri_bench::table2_example;
use amri_core::assess::{feed_table_ii, AssessorKind};
use amri_core::IndexConfig;

#[test]
fn csria_deletes_the_a_family_and_misconfigures() {
    let r = table2_example();
    let masks: Vec<u32> = r.csria_frequent.iter().map(|(p, _)| p.mask()).collect();
    assert!(!masks.contains(&0b001), "CSRIA must delete <A,*,*>");
    assert!(!masks.contains(&0b011), "CSRIA must delete <A,B,*>");
    assert_eq!(masks.len(), 5, "the five ≥5%% patterns survive: {masks:?}");
    assert_eq!(
        r.csria_config.bits_of(0),
        0,
        "no bit can go to A without its statistics: {}",
        r.csria_config
    );
}

#[test]
fn cdia_recovers_the_true_optimal_configuration() {
    let r = table2_example();
    // The A family surfaces with its rolled-up 8%.
    let a = r
        .cdia_frequent
        .iter()
        .find(|(p, _)| p.mask() == 0b001)
        .expect("CDIA reports <A,*,*>");
    assert!((a.1 - 0.08).abs() < 0.01, "rolled-up 8%, got {}", a.1);
    // And the selected 4-bit configuration matches the exact-statistics
    // optimum — §IV-C2 names A:1|B:1|C:2 as the true optimal IC.
    assert_eq!(r.cdia_config, r.optimal_config);
    assert!(r.optimal_config.bits_of(0) >= 1);
    assert_eq!(r.optimal_config.total_bits(), 4);
    assert_eq!(
        r.optimal_config,
        IndexConfig::new(vec![1, 1, 2]).unwrap(),
        "the paper's worked-example optimum"
    );
}

#[test]
fn sria_and_dia_agree_on_table_ii() {
    // §V: DIA and SRIA share the same statistics and report identically.
    let mut sria = AssessorKind::Sria.build(3, 0.001, 1);
    let mut dia = AssessorKind::Dia.build(3, 0.001, 1);
    feed_table_ii(sria.as_mut());
    feed_table_ii(dia.as_mut());
    for theta in [0.01, 0.05, 0.1, 0.3] {
        assert_eq!(sria.frequent(theta), dia.frequent(theta), "theta {theta}");
    }
    // Exact methods see all seven patterns.
    assert_eq!(sria.frequent(0.0).len(), 7);
}
