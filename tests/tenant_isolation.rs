//! The serving layer's load-bearing guarantee, pinned cross-crate:
//! **co-residency is invisible**. A tenant's `RunResult` — compared as
//! its full `Debug` render, byte for byte — is identical whether the
//! run happened solo in its own process, hosted next to healthy
//! neighbors, hosted next to neighbors dying of memory exhaustion or
//! degrading under pressure faults, or suspended to disk mid-run and
//! resumed in a completely fresh host.
//!
//! Host-level mechanics (admission, queueing, scheduling, refusals) are
//! covered in `crates/serve/tests/host.rs`; this suite is only about
//! what tenants can observe of each other: nothing.

use amri_core::assess::AssessorKind;
use amri_engine::{
    DegradationPolicy, Executor, FaultPlan, IndexingMode, MemoryBudget, PressureWindow, RunOutcome,
    SheddingPolicy,
};
use amri_hh::CombineStrategy;
use amri_serve::{HostConfig, TenantHost, TenantState};
use amri_stream::{VirtualDuration, VirtualTime};
use amri_synth::scenario::{paper_scenario, PaperScenario, Scale};
use amri_synth::DriftingWorkload;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amri-isolation-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A short quick-scale scenario with a finite budget.
fn scenario(seed: u64) -> PaperScenario {
    let mut sc = paper_scenario(Scale::Quick, seed);
    sc.engine.duration = VirtualDuration::from_secs(6);
    sc.engine.budget = MemoryBudget::mib(8);
    sc
}

fn executor(sc: &PaperScenario, mode: IndexingMode) -> Executor<DriftingWorkload> {
    Executor::try_new(&sc.query, sc.workload(), mode, sc.engine.clone())
        .expect("valid engine configuration")
}

/// The four indexing modes of the paper's comparison, labelled.
fn all_modes() -> Vec<(&'static str, IndexingMode)> {
    vec![
        (
            "amri",
            IndexingMode::Amri {
                assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
                initial: None,
            },
        ),
        (
            "hash-2",
            IndexingMode::AdaptiveHash {
                n_indices: 2,
                initial: None,
            },
        ),
        (
            "static-bitmap",
            IndexingMode::StaticBitmap { configs: None },
        ),
        ("scan", IndexingMode::Scan),
    ]
}

/// The solo ground truth: the exact executor run alone, no host anywhere.
fn solo_render(exec: Executor<DriftingWorkload>) -> String {
    format!("{:#?}", exec.run())
}

/// A tenant's hosted render, extracted from a driven host's reports.
fn hosted_render(host: TenantHost<DriftingWorkload>, label: &str) -> String {
    let report = host
        .into_reports()
        .into_iter()
        .find(|r| r.label == label)
        .expect("tenant present");
    assert_eq!(report.state, TenantState::Completed, "{label} must finish");
    format!(
        "{:#?}",
        report.result.expect("completed tenants carry results")
    )
}

#[test]
fn neighbor_dying_of_oom_is_invisible() {
    // The victim: hash-7 under the §V starvation budget — dies of OOM.
    // The witness: AMRI under a comfortable budget, full default
    // duration, co-resident with the dying tenant the whole time.
    let witness_sc = {
        let mut sc = paper_scenario(Scale::Quick, 42);
        sc.engine.budget = MemoryBudget::mib(8);
        sc
    };
    let victim_sc = {
        let mut sc = paper_scenario(Scale::Quick, 42);
        sc.engine.budget = MemoryBudget { bytes: 300_000 };
        sc
    };
    let witness_mode = IndexingMode::Amri {
        assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
        initial: None,
    };
    let victim_mode = IndexingMode::AdaptiveHash {
        n_indices: 7,
        initial: None,
    };

    let solo_witness = solo_render(executor(&witness_sc, witness_mode.clone()));
    let solo_victim = solo_render(executor(&victim_sc, victim_mode.clone()));

    let mut host = TenantHost::new(HostConfig::default());
    host.admit("victim", 1, executor(&victim_sc, victim_mode))
        .unwrap();
    host.admit("witness", 1, executor(&witness_sc, witness_mode))
        .unwrap();
    host.drive();
    let reports = host.into_reports();
    let victim = reports[0]
        .result
        .as_ref()
        .expect("victim completes (by dying)");
    assert!(
        matches!(victim.outcome, RunOutcome::OutOfMemory { .. }),
        "the victim must actually die: {:?}",
        victim.outcome
    );
    assert_eq!(
        format!("{victim:#?}"),
        solo_victim,
        "even the dying tenant's result is exactly its solo run"
    );
    let witness = reports[1].result.as_ref().expect("witness completes");
    assert_eq!(
        format!("{witness:#?}"),
        solo_witness,
        "a neighbor's OOM death must be byte-invisible to the witness"
    );
}

#[test]
fn neighbor_degrading_under_pressure_faults_is_invisible() {
    // The victim runs governed with an injected pressure spike above the
    // governor's high-water mark; it degrades (sheds/evicts) mid-run.
    // The witness runs clean next to it.
    let witness_sc = scenario(7);
    let victim_sc = {
        let mut sc = scenario(7);
        sc.engine.degradation = Some(DegradationPolicy {
            high_water: 0.9,
            low_water: 0.7,
            max_backlog: 8,
            shedding: SheddingPolicy::DropOldest,
            seed: 7,
        });
        sc.engine.faults = Some(FaultPlan {
            seed: 7,
            drop_prob: 0.05,
            duplicate_prob: 0.05,
            reorder_prob: 0.1,
            pressure: vec![PressureWindow {
                from: VirtualTime::from_secs(2),
                until: VirtualTime::from_secs(4),
                bytes: 7_900_000, // over 0.9 * 8 MiB, under the budget
            }],
            ..FaultPlan::default()
        });
        sc
    };
    let mode = IndexingMode::Scan;

    let solo_witness = solo_render(executor(&witness_sc, mode.clone()));

    let mut host = TenantHost::new(HostConfig::default());
    host.admit("victim", 1, executor(&victim_sc, mode.clone()))
        .unwrap();
    host.admit("witness", 1, executor(&witness_sc, mode))
        .unwrap();
    host.drive();
    let reports = host.into_reports();
    let victim = reports[0].result.as_ref().expect("victim completes");
    assert!(
        victim.degradation.shed_jobs > 0 || victim.degradation.evicted_tuples > 0,
        "the victim must actually degrade: {:?}",
        victim.degradation
    );
    assert_eq!(
        format!(
            "{:#?}",
            reports[1].result.as_ref().expect("witness completes")
        ),
        solo_witness,
        "a neighbor shedding under pressure faults must be byte-invisible"
    );
}

#[test]
fn suspend_resume_in_a_fresh_host_is_invisible_across_all_modes() {
    for (label, mode) in all_modes() {
        let sc = scenario(23);
        let solo = solo_render(executor(&sc, mode.clone()));

        // Interrupted: a few quanta in one host, suspend to disk, drop
        // the host entirely, resume the snapshot in a brand-new host.
        let dir = tmpdir(label);
        let mut first = TenantHost::new(HostConfig::default());
        let id = first
            .admit(label, 1, executor(&sc, mode.clone()))
            .unwrap()
            .id();
        for _ in 0..5 {
            first.run_quantum().expect("run is longer than 5 quanta");
        }
        let snap = first.suspend_to(id, &dir).unwrap();
        drop(first);

        let mut fresh = TenantHost::new(HostConfig::default());
        fresh
            .admit_resumed(label, 1, executor(&sc, mode), &snap)
            .unwrap();
        fresh.drive();
        assert_eq!(
            hosted_render(fresh, label),
            solo,
            "{label}: a suspend/fresh-host-resume cycle must be byte-invisible"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn hosting_alone_changes_nothing() {
    // The degenerate case pinning the refactor itself: one tenant, one
    // host — the quantum-sliced session path must reproduce the
    // run-to-completion path exactly, in every mode.
    for (label, mode) in all_modes() {
        let sc = scenario(31);
        let solo = solo_render(executor(&sc, mode.clone()));
        let mut host = TenantHost::new(HostConfig::default());
        host.admit(label, 1, executor(&sc, mode)).unwrap();
        host.drive();
        assert_eq!(hosted_render(host, label), solo, "{label}");
    }
}
