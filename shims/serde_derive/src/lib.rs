//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The workspace marks config structs `#[derive(Serialize, Deserialize)]`
//! for future interchange but never actually serializes anything, so the
//! shim derives emit no code. The blanket impls in the `serde` shim crate
//! satisfy any `T: Serialize`/`T: Deserialize` bound.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
