//! Offline shim for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on config types for
//! future interchange but never serializes at runtime (no `serde_json`,
//! no format crates). This shim keeps those derives compiling: the derive
//! macros (re-exported from the local `serde_derive` shim) expand to
//! nothing, and the marker traits below are blanket-implemented so any
//! `T: Serialize` bound is vacuously satisfied.

#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

/// Vacuous stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Vacuous stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
