//! Offline shim for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so external dependencies are replaced with minimal local
//! implementations of exactly the API surface the workspace uses (see
//! `shims/README.md`). This crate provides:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (NOT the
//!   upstream ChaCha12; stream values differ from real `rand`, but every
//!   consumer in this workspace only relies on determinism and statistical
//!   quality, never on exact draws);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`] for the
//!   primitive types the workspace draws.

#![warn(rust_2018_idioms)]

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (splitmix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable uniformly from raw generator output (the shim's stand-in
/// for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift rejection-free mapping; the modulo bias over
                // a 64-bit draw is negligible for the spans this repo uses.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level drawing interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of a primitive type (`rng.gen::<f64>()` et al).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value within a range.
    #[inline]
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded by splitmix64 key expansion.
    ///
    /// Upstream `rand`'s `StdRng` is ChaCha12; this shim trades the exact
    /// stream for a tiny dependency-free implementation with excellent
    /// statistical behavior. Consumers must not rely on exact draw values.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing. Paired
        /// with [`StdRng::from_state`] this round-trips the generator
        /// exactly: the restored generator continues the same stream.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state words previously captured with
        /// [`StdRng::state`].
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: u64 = r.gen_range(0..10u64);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..7usize);
            assert!((3..7).contains(&v));
        }
    }

    #[test]
    fn f64_draws_are_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
