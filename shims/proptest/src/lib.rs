//! Offline shim for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest this workspace actually uses (see
//! `shims/README.md`): the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_oneof!`] macros, the [`Strategy`] trait
//! with `prop_map`, integer-range / tuple / vec / hash-set / array
//! strategies, and [`ProptestConfig::with_cases`].
//!
//! Semantics versus upstream: cases are generated from a deterministic
//! per-test RNG (seeded from the test name, so failures reproduce), and a
//! failing case reports its inputs before re-panicking. There is **no
//! shrinking** — the reported counterexample is the raw generated input.

#![warn(rust_2018_idioms)]

pub use config::ProptestConfig;
pub use strategy::Strategy;

/// Test-case generation RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SampleRange, SeedableRng};

    /// Deterministic per-test random source for strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG seeded from the test's name (FNV-1a), so every run of a
        /// given test generates the same case sequence.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Uniform draw from a range.
        pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            self.inner.gen_range(range)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Runner configuration.
pub mod config {
    /// The subset of `proptest::test_runner::ProptestConfig` the workspace
    /// uses: the number of cases per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases to generate and run per property test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases (the upstream constructor).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A generator of test-case values.
    ///
    /// Unlike upstream (value *trees* supporting shrinking), a shim
    /// strategy generates plain values directly.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value: Debug + Clone;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Debug + Clone,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Debug + Clone,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Type-erased strategy (output of [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug + Clone> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (the backing type of
    /// [`crate::prop_oneof!`]).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over `variants`; each case picks one uniformly.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs >= 1 variant");
            Union { variants }
        }
    }

    impl<T: Debug + Clone> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.variants.len());
            self.variants[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }
}

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::fmt::Debug;
    use std::hash::Hash;

    /// Length specification: an exact `usize` or a `Range`/`RangeInclusive`.
    pub trait IntoSizeRange {
        /// Half-open `[lo, hi)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty length range");
        VecStrategy { element, lo, hi }
    }

    /// Strategy built by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` of values from `element`, size drawn from `size`.
    ///
    /// As upstream: when the element domain is too small to reach the
    /// drawn size, the set saturates at however many distinct values the
    /// generation attempts produced.
    pub fn hash_set<S>(element: S, size: impl IntoSizeRange) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range");
        HashSetStrategy { element, lo, hi }
    }

    /// Strategy built by [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.lo..self.hi);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 16 * target + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Fixed-size array strategies (`proptest::array::uniform3`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `[T; 3]` with each element drawn independently from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }

    /// Strategy built by [`uniform3`].
    #[derive(Debug, Clone)]
    pub struct Uniform3<S>(S);

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

/// Numeric strategies (`proptest::num::<type>::ANY`).
pub mod num {
    macro_rules! num_any_module {
        ($($m:ident => $t:ty),*) => {$(
            /// Full-domain strategy for the corresponding integer type.
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Strategy type of [`ANY`].
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Any value of the type, uniformly.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    num_any_module!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize
    );
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property; on failure the runner reports the generated
/// inputs. (The shim maps this to `assert!` — the enclosing harness
/// catches the panic and prints the case.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases. A failing
/// case prints its inputs and re-panics (no shrinking in the shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let __values = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                let __printed = ::std::format!("{:?}", __values);
                let __moved = ::std::clone::Clone::clone(&__values);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ($($arg,)+) = __moved;
                        $body;
                    }),
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    ::std::eprintln!(
                        "proptest: `{}` failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __printed
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tri {
        Small(u64),
        Pair(u32, u32),
        Flag(bool),
    }

    fn tri() -> impl Strategy<Value = Tri> {
        prop_oneof![
            (0u64..10).prop_map(Tri::Small),
            (0u32..4, 5u32..9).prop_map(|(a, b)| Tri::Pair(a, b)),
            crate::bool::ANY.prop_map(Tri::Flag),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5, z in -4i32..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-4..4).contains(&z));
        }

        #[test]
        fn vec_respects_length_range(v in crate::collection::vec(0u8..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn exact_vec_length(v in crate::collection::vec(0u64..100, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn hash_set_sizes(s in crate::collection::hash_set(0u32..50, 1..6)) {
            prop_assert!(!s.is_empty() && s.len() < 6, "size {}", s.len());
        }

        #[test]
        fn uniform3_components_in_range(a in crate::array::uniform3(1u64..7)) {
            for v in a {
                prop_assert!((1..7).contains(&v));
            }
        }

        #[test]
        fn oneof_produces_every_variant(ts in crate::collection::vec(tri(), 64)) {
            // With 64 draws/case the union must hit each arm regularly.
            for t in &ts {
                if let Tri::Pair(a, b) = t {
                    prop_assert!(*a < 4 && (5..9).contains(b));
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..20);
        let mut a = crate::test_runner::TestRng::for_test("some_test");
        let mut b = crate::test_runner::TestRng::for_test("some_test");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
        let mut c = crate::test_runner::TestRng::for_test("other_test");
        assert_ne!(strat.generate(&mut a), strat.generate(&mut c));
    }

    #[test]
    fn union_covers_all_variants() {
        use crate::strategy::Strategy;
        let strat = tri();
        let mut rng = crate::test_runner::TestRng::for_test("union_covers");
        let (mut small, mut pair, mut flag) = (0, 0, 0);
        for _ in 0..600 {
            match strat.generate(&mut rng) {
                Tri::Small(_) => small += 1,
                Tri::Pair(..) => pair += 1,
                Tri::Flag(_) => flag += 1,
            }
        }
        assert!(
            small > 100 && pair > 100 && flag > 100,
            "{small}/{pair}/{flag}"
        );
    }
}
