//! Offline shim for the `criterion` crate.
//!
//! Implements the benchmarking surface this workspace uses (see
//! `shims/README.md`): `Criterion`, benchmark groups, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated to pick an iteration
//! count whose batch takes a few milliseconds, then timed over
//! `sample_size` batches with `std::time::Instant`. One line per
//! benchmark is printed:
//!
//! ```text
//! group/id  time: [lo med hi] per iter (S samples × I iters)  median_ns=NNN
//! ```
//!
//! `median_ns=` is the stable machine-readable field `BENCH_*.json`
//! files are regenerated from. No statistical outlier analysis, HTML
//! reports, or baseline comparison — wall-clock medians only.

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identity function opaque to the optimizer.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much setup cost `iter_batched` amortizes per batch. The shim
/// always re-runs setup outside the timed section (i.e. `PerIteration`
/// semantics), which is a valid timing for every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Benchmark identifier: a function name, optionally with a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new<S: Display, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Per-benchmark timing result in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Stats {
    lo: f64,
    median: f64,
    hi: f64,
    samples: usize,
    iters: u64,
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    stats: Option<Stats>,
}

/// Calibration floor: grow the batch until it runs at least this long.
const MIN_BATCH: Duration = Duration::from_millis(2);
/// Per-sample time budget the calibrated iteration count aims for.
const TARGET_SAMPLE_NS: f64 = 10_000_000.0;

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            stats: None,
        }
    }

    /// Time `routine`, called in a tight loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it is long enough to time.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_BATCH || iters >= 1 << 28 {
                break (elapsed.as_nanos() as f64 / iters as f64).max(0.01);
            }
            iters = iters.saturating_mul(4);
        };
        let iters = ((TARGET_SAMPLE_NS / per_iter_ns) as u64).clamp(1, 1 << 32);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.stats = Some(summarize(&mut samples, iters));
    }

    /// Time `routine` over inputs built by `setup`; setup runs outside
    /// the timed section.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate on timed routine calls only.
        let mut est = f64::MAX;
        for _ in 0..3 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            est = est.min(start.elapsed().as_nanos() as f64);
        }
        let iters = ((TARGET_SAMPLE_NS / est.max(1.0)) as u64).clamp(1, 10_000);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            samples.push(timed.as_nanos() as f64 / iters as f64);
        }
        self.stats = Some(summarize(&mut samples, iters));
    }
}

fn summarize(samples: &mut [f64], iters: u64) -> Stats {
    samples.sort_by(|a, b| a.total_cmp(b));
    Stats {
        lo: samples[0],
        median: samples[samples.len() / 2],
        hi: samples[samples.len() - 1],
        samples: samples.len(),
        iters,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark runner.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Read the benchmark filter from the command line (any non-flag
    /// argument, as passed by `cargo bench -- <filter>`).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                self.filter = Some(arg);
                break;
            }
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            sample_size: self.default_sample_size,
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(None, &id.into(), sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: Option<&str>,
        id: &BenchmarkId,
        sample_size: usize,
        mut f: F,
    ) {
        let full = match group {
            Some(g) => format!("{g}/{}", id.id),
            None => id.id.clone(),
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher::new(sample_size);
        f(&mut b);
        match b.stats {
            Some(s) => println!(
                "{full}  time: [{} {} {}] per iter ({} samples × {} iters)  median_ns={:.1}",
                fmt_ns(s.lo),
                fmt_ns(s.median),
                fmt_ns(s.hi),
                s.samples,
                s.iters,
                s.median
            ),
            None => println!("{full}  (no measurement: bencher not driven)"),
        }
    }
}

/// Group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (name, n) = (self.name.clone(), self.sample_size);
        self.criterion.run_one(Some(&name), &id.into(), n, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let (name, n) = (self.name.clone(), self.sample_size);
        self.criterion
            .run_one(Some(&name), &id.into(), n, |b| f(b, input));
        self
    }

    /// Close the group (upstream flushes reports here; the shim prints
    /// eagerly, so this only consumes the group).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_plausible_timings() {
        let mut b = Bencher::new(5);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        let s = b.stats.expect("stats recorded");
        assert!(s.lo > 0.0 && s.lo <= s.median && s.median <= s.hi);
        assert!(s.median < 1_000.0, "trivial op median {} ns", s.median);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(5);
        b.iter_batched(
            || vec![0u8; 1 << 16], // expensive setup
            |v| v.len(),           // trivial routine
            BatchSize::LargeInput,
        );
        let s = b.stats.expect("stats recorded");
        // A 64 KiB zeroed allocation costs far more than `len()`; if setup
        // leaked into the timing the median would be thousands of ns.
        assert!(
            s.median < 2_000.0,
            "setup leaked into timing: {} ns",
            s.median
        );
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("multihash", 4).id, "multihash/4");
        assert_eq!(
            BenchmarkId::from_parameter("CDIA-highest").id,
            "CDIA-highest"
        );
        assert_eq!(BenchmarkId::from(String::from("x")).id, "x");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
            default_sample_size: 3,
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("wanted_case", |b| {
                ran.push("wanted");
                b.iter(|| black_box(1 + 1));
            });
            g.bench_function("other_case", |_b| {
                ran.push("other");
            });
            g.finish();
        }
        assert_eq!(ran, vec!["wanted"]);
    }
}
