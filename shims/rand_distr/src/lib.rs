//! Offline shim for the `rand_distr` crate: `Normal` and bounded `Zipf`.
//!
//! See `shims/README.md` for why this exists. Only the surface
//! `amri-synth` uses is provided: [`Distribution`], [`Normal`] (Box–Muller)
//! and [`Zipf`] (Gray et al.'s inverse-CDF-with-rejection sampler, the same
//! algorithm upstream `rand_distr` uses).

#![warn(rust_2018_idioms)]

use rand::Rng;
use std::fmt;

/// Sampling interface, mirroring `rand_distr::Distribution`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter-validation error for the shim distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution, sampled by Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// New normal distribution.
    ///
    /// # Errors
    /// If `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(Error("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 kept away from 0 so ln() stays finite.
        let u1: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen::<f64>();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.mean + self.std_dev * radius * theta.cos()
    }
}

/// Bounded Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(X = k) ∝ k^{-s}`.
///
/// Sampled by the inverse-CDF-with-rejection method of Gray et al.
/// ("Quickly Generating Billion-Record Synthetic Databases"), O(1) per
/// draw with no per-rank tables — the same approach as upstream
/// `rand_distr`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: f64,
    s: f64,
    /// Normalizer of the continuous envelope CDF.
    t: f64,
}

impl Zipf {
    /// New Zipf distribution over `1..=n` with exponent `s >= 0`.
    ///
    /// # Errors
    /// If `n` is zero or `s` is negative/not finite.
    pub fn new(n: u64, s: f64) -> Result<Self, Error> {
        if n == 0 {
            return Err(Error("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(Error("Zipf requires finite s >= 0"));
        }
        let nf = n as f64;
        // Envelope mass: 1 (the k=1 cell) plus the integral of x^-s over
        // [1, n] for the tail.
        let t = if (s - 1.0).abs() < 1e-12 {
            1.0 + nf.ln()
        } else {
            (nf.powf(1.0 - s) - s) / (1.0 - s)
        };
        Ok(Zipf { n: nf, s, t })
    }

    /// Inverse of the envelope CDF; maps `p ∈ [0, 1]` to `[0, n]`.
    #[inline]
    fn inv_cdf(&self, p: f64) -> f64 {
        let pt = p * self.t;
        if pt <= 1.0 {
            pt
        } else if (self.s - 1.0).abs() < 1e-12 {
            (pt - 1.0).exp()
        } else {
            (pt * (1.0 - self.s) + self.s).powf(1.0 / (1.0 - self.s))
        }
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            // (0, 1]: flip the half-open unit draw.
            let p = 1.0 - rng.gen::<f64>();
            let inv = self.inv_cdf(p);
            let x = (inv + 1.0).floor().min(self.n);
            let mut ratio = x.powf(-self.s);
            if x > 1.0 {
                ratio *= inv.powf(self.s);
            }
            let accept = 1.0 - rng.gen::<f64>();
            if accept < ratio {
                return x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn zipf_ranks_stay_in_domain() {
        let d = Zipf::new(50, 1.2).unwrap();
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..20_000 {
            let v = d.sample(&mut r);
            assert!((1.0..=50.0).contains(&v), "rank {v} out of [1, 50]");
            assert_eq!(v, v.floor(), "ranks are integral");
        }
    }

    #[test]
    fn zipf_matches_exact_pmf() {
        // Compare the empirical head against the exact normalized pmf.
        let n = 20u64;
        let s = 1.0;
        let d = Zipf::new(n, s).unwrap();
        let mut r = StdRng::seed_from_u64(3);
        let draws = 200_000;
        let mut hist = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            hist[d.sample(&mut r) as usize] += 1;
        }
        let h: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        for k in [1usize, 2, 5, 10] {
            let expect = (k as f64).powf(-s) / h;
            let got = hist[k] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "rank {k}: got {got:.4}, expect {expect:.4}"
            );
        }
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let d = Zipf::new(8, 0.0).unwrap();
        let mut r = StdRng::seed_from_u64(4);
        let mut hist = [0u64; 9];
        for _ in 0..16_000 {
            hist[d.sample(&mut r) as usize] += 1;
        }
        for (k, count) in hist.iter().enumerate().skip(1) {
            assert!((1700..2300).contains(count), "rank {k} count {count}");
        }
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -0.5).is_err());
    }
}
