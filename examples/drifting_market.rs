//! A stock-monitoring flavored end-to-end run (the paper's introduction
//! scenario): four correlated feeds — trades, news, sector reports, blog
//! mentions — joined 4-way while the correlation structure drifts. Runs
//! the quick-scale paper scenario under AMRI and under the static bitmap
//! and prints aligned throughput curves.
//!
//! Run with `cargo run --release -p amri-apps --example drifting_market`.

use amri_bench::{render_series_table, render_summary};
use amri_core::assess::AssessorKind;
use amri_engine::{Executor, IndexingMode};
use amri_hh::CombineStrategy;
use amri_synth::scenario::{paper_scenario, Scale};

fn main() {
    let seed = 2026;
    let sc = paper_scenario(Scale::Quick, seed);
    println!(
        "4-way drifting join: {} phases of {} per cycle, λ_d = {}/s per stream\n",
        sc.schedule.n_phases(),
        sc.schedule.phase_length(),
        sc.engine.lambda_d
    );

    let amri = Executor::try_new(
        &sc.query,
        sc.workload(),
        IndexingMode::Amri {
            assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
            initial: None,
        },
        sc.engine.clone(),
    )
    .expect("valid engine configuration")
    .run();
    let bitmap = Executor::try_new(
        &sc.query,
        sc.workload(),
        IndexingMode::StaticBitmap { configs: None },
        sc.engine.clone(),
    )
    .expect("valid engine configuration")
    .run();

    let runs = vec![amri, bitmap];
    println!("{}", render_series_table(&runs, 13));
    println!("{}", render_summary(&runs));

    let amri = &runs[0];
    println!(
        "AMRI re-tuned {} times while the selectivities drifted:",
        amri.retunes.len()
    );
    for r in amri.retunes.iter().take(10) {
        println!(
            "  t={:>5.1}s  state S{}  -> {}  ({} entries moved)",
            r.t.as_secs_f64(),
            r.state,
            r.config,
            r.moved
        );
    }
    if amri.retunes.len() > 10 {
        println!("  ... and {} more", amri.retunes.len() - 10);
    }
}
