//! Walk the four assessment methods over the paper's Table II workload and
//! print what each reports at θ = 5% — the §IV-C2 / §IV-D2 worked example,
//! live.
//!
//! Run with `cargo run -p amri-apps --example assessment_demo`.

use amri_bench::table2_example;
use amri_core::assess::{feed_table_ii, AssessorKind};

fn main() {
    println!("Feeding 10,000 requests with the Table II frequencies:");
    println!("  <A,*,*> 4%  <*,B,*> 10%  <*,*,C> 10%  <A,B,*> 4%");
    println!("  <A,*,C> 16%  <*,B,C> 10%  <A,B,C> 46%\n");

    for kind in AssessorKind::figure6_lineup() {
        let mut a = kind.build(3, 0.001, 11);
        feed_table_ii(a.as_mut());
        let hh = a.frequent(0.05);
        println!(
            "{:<13} ({} entries live): {} patterns ≥ 5%",
            kind.label(),
            a.entries(),
            hh.len()
        );
        for (p, f) in hh {
            println!("    {p}  {:.1}%", f * 100.0);
        }
    }

    println!("\nConfiguration consequences (4-bit key map):");
    let r = table2_example();
    println!("  from CSRIA statistics : {}", r.csria_config);
    println!("  from CDIA statistics  : {}", r.cdia_config);
    println!("  true optimum          : {}", r.optimal_config);
}
