//! The paper's §I-A motivating scenario: a package-tracking DSMS whose
//! sensors emit (priority_code, package_id, location_id). Compare the
//! multi-hash access module of the worked example (indices on A1, A1&A2,
//! A2&A3) against a single bit-address index on the two §I-A search
//! requests — including `sr₂`, which the hash module can only answer with
//! a full scan.
//!
//! Run with `cargo run -p amri-apps --example package_tracking`.

use amri_core::{
    BitAddressIndex, CostParams, CostReceipt, IndexConfig, MultiHashIndex, ScanIndex, StateStore,
};
use amri_stream::{
    AccessPattern, AttrId, AttrVec, SearchRequest, StreamId, Tuple, TupleId, VirtualTime,
    WindowSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sensor_tuple(rng: &mut StdRng, id: u64) -> Tuple {
    Tuple::new(
        TupleId(id),
        StreamId(0),
        VirtualTime::ZERO,
        AttrVec::from_slice(&[
            rng.gen_range(0..4096),    // priority code
            rng.gen_range(0..100_000), // package id
            rng.gen_range(0..512),     // location id
        ])
        .unwrap(),
    )
}

fn main() {
    let jas = vec![AttrId(0), AttrId(1), AttrId(2)];
    let window = WindowSpec::secs(3600);
    let params = CostParams::default();
    let ap = |m: u32| AccessPattern::new(m, 3);

    // The paper's Figure 1 access module: A1, A1&A2, A2&A3.
    let mut hash_state = StateStore::new(
        StreamId(0),
        jas.clone(),
        window,
        MultiHashIndex::new(vec![ap(0b001), ap(0b011), ap(0b110)]),
    );
    // The paper's Figure 3 bit-address index: 10 bits = 5|2|3.
    let mut bi_state = StateStore::new(
        StreamId(0),
        jas.clone(),
        window,
        BitAddressIndex::new(IndexConfig::new(vec![5, 2, 3]).unwrap()),
    );
    // Reference: no index.
    let mut scan_state = StateStore::new(StreamId(0), jas, window, ScanIndex::new());

    let mut rng = StdRng::seed_from_u64(2012);
    let mut insert_hash = CostReceipt::new();
    let mut insert_bi = CostReceipt::new();
    for i in 0..50_000 {
        let t = sensor_tuple(&mut rng, i);
        hash_state.insert(t, &mut insert_hash);
        bi_state.insert(t, &mut insert_bi);
        scan_state.insert(t, &mut CostReceipt::new());
    }
    println!("50k sensor readings stored");
    println!(
        "maintenance ticks  multi-hash: {:>10.0}   bit-address: {:>10.0}",
        params.ticks(&insert_hash).0,
        params.ticks(&insert_bi).0
    );
    println!(
        "index memory bytes multi-hash: {:>10}   bit-address: {:>10}",
        hash_state.memory_bytes(),
        bi_state.memory_bytes()
    );

    // sr₁: priority = 2012 AND location = 47 (pattern <A1, *, A3>).
    let sr1 = SearchRequest::new(ap(0b101), AttrVec::from_slice(&[2012, 0, 47]).unwrap());
    // sr₂: location = 47 only (pattern <*, *, A3>) — no suitable hash index.
    let sr2 = SearchRequest::new(ap(0b100), AttrVec::from_slice(&[0, 0, 47]).unwrap());

    for (name, sr) in [("sr1 <A1,*,A3>", &sr1), ("sr2 <*,*,A3>", &sr2)] {
        println!("\nsearch {name}:");
        for (label, hits, receipt) in [
            run(&hash_state, sr),
            run(&bi_state, sr),
            run(&scan_state, sr),
        ] {
            println!(
                "  {label:<12} {hits:>4} hits  {:>8} comparisons  {:>6} bucket probes  {:>8.0} ticks",
                receipt.comparisons,
                receipt.bucket_probes,
                params.ticks(&receipt).0
            );
        }
    }
    println!(
        "\nNote sr2: the access module falls back to a 50k-tuple scan (§I-A),\n\
         while the bit-address index visits only the buckets matching A3."
    );
}

fn run<I: amri_core::StateIndex>(
    state: &StateStore<I>,
    sr: &SearchRequest,
) -> (&'static str, usize, CostReceipt) {
    let mut scratch = amri_core::SearchScratch::new();
    let mut receipt = CostReceipt::new();
    state.search_into(sr, &mut scratch, &mut receipt);
    (state.index().kind(), scratch.hits.len(), receipt)
}
