//! Record a drifting workload as a trace file, replay it through the
//! engine, and confirm the replay reproduces the original run — the
//! workflow for bringing external ("real data") traces to the harness.
//!
//! Run with `cargo run --release -p amri-apps --example trace_replay`.

use amri_core::assess::AssessorKind;
use amri_engine::{Executor, IndexingMode};
use amri_hh::CombineStrategy;
use amri_synth::scenario::{paper_scenario, Scale};
use amri_synth::{record_trace, TraceWorkload};

fn main() {
    let mut sc = paper_scenario(Scale::Quick, 7);
    sc.engine.duration = amri_stream::VirtualDuration::from_secs(20);
    // Traces carry values, not drift phases: exact replay equivalence needs
    // a time-invariant generator. (Drifting workloads replay fine too — see
    // amri-synth's tests — but arrive value-shifted near phase boundaries.)
    sc.schedule = amri_synth::DriftSchedule::constant(4, 24);
    let mode = || IndexingMode::Amri {
        assessor: AssessorKind::Cdia(CombineStrategy::HighestCount),
        initial: None,
    };

    // Run once with the live generator.
    let live = Executor::try_new(&sc.query, sc.workload(), mode(), sc.engine.clone())
        .expect("valid engine configuration")
        .run();
    println!("live run    : {} outputs", live.outputs);

    // Record enough tuples to cover the run, then replay the trace.
    let n_streams = sc.query.n_streams();
    let per_stream = (sc.engine.lambda_d * 25.0) as usize;
    let trace = record_trace(&mut sc.workload(), n_streams, per_stream);
    println!(
        "trace       : {} lines, {} bytes",
        trace.lines().count(),
        trace.len()
    );
    let replayed = Executor::try_new(
        &sc.query,
        TraceWorkload::parse(&trace, n_streams).expect("well-formed trace"),
        mode(),
        sc.engine.clone(),
    )
    .expect("valid engine configuration")
    .run();
    println!("replayed run: {} outputs", replayed.outputs);

    assert_eq!(
        live.outputs, replayed.outputs,
        "a recorded trace must reproduce its source run exactly"
    );
    println!("replay matches the live run exactly.");
}
