//! Quickstart: build one AMRI-tuned state, feed it tuples and search
//! requests, and watch the tuner migrate the index toward the workload.
//!
//! Run with `cargo run -p amri-apps --example quickstart`.

use amri_core::assess::AssessorKind;
use amri_core::{AmriState, CostParams, CostReceipt, IndexConfig, SearchScratch, TunerConfig};
use amri_hh::CombineStrategy;
use amri_stream::{
    AccessPattern, AttrId, AttrVec, SearchRequest, StreamId, Tuple, TupleId, VirtualDuration,
    VirtualTime, WindowSpec,
};

fn main() {
    // A state for a stream with three join attributes, 30-second window,
    // tuned by CDIA with highest-count combination, starting from an even
    // 12-bit index configuration.
    let mut state = AmriState::new(
        StreamId(0),
        vec![AttrId(0), AttrId(1), AttrId(2)],
        WindowSpec::secs(30),
        AssessorKind::Cdia(CombineStrategy::HighestCount),
        IndexConfig::even(3, 12).unwrap(),
        TunerConfig {
            assess_period: VirtualDuration::from_secs(5),
            min_requests: 100,
            total_bits: 12,
            ..TunerConfig::default()
        },
        CostParams::default(),
    )
    .expect("valid configuration");

    println!("initial configuration: {}", state.config());

    // Store 1000 tuples.
    let mut receipt = CostReceipt::new();
    for i in 0..1000u64 {
        let t = Tuple::new(
            TupleId(i),
            StreamId(0),
            VirtualTime::ZERO,
            AttrVec::from_slice(&[i % 50, i % 20, i % 10]).unwrap(),
        );
        state.insert(t, &mut receipt);
    }
    println!(
        "stored {} tuples ({} hash ops charged)",
        state.len(),
        receipt.hash_ops
    );

    // A workload that only ever searches on attribute A. The scratch
    // buffer is reused across requests, so steady state never allocates.
    let mut scratch = SearchScratch::new();
    let mut receipt = CostReceipt::new();
    let mut hits = 0;
    for i in 0..500u64 {
        let req = SearchRequest::new(
            AccessPattern::from_positions(&[0], 3).unwrap(),
            AttrVec::from_slice(&[i % 50, 0, 0]).unwrap(),
        );
        state.search_into(&req, &mut scratch, &mut receipt);
        hits += scratch.hits.len();
    }
    println!(
        "500 A-only searches: {hits} hits, {} comparisons before tuning",
        receipt.comparisons
    );

    // Let the tuner react.
    let mut migration = CostReceipt::new();
    let report = state
        .maybe_retune(
            VirtualTime::from_secs(5),
            1000.0,
            100.0,
            30.0,
            &mut migration,
        )
        .expect("the tuner must react to a single-pattern workload");
    println!(
        "retuned to {} (moved {} entries, predicted gain {:.0} ticks/s)",
        report.config, report.moved, report.predicted_gain
    );

    // The same searches are now cheaper.
    let mut receipt = CostReceipt::new();
    for i in 0..500u64 {
        let req = SearchRequest::new(
            AccessPattern::from_positions(&[0], 3).unwrap(),
            AttrVec::from_slice(&[i % 50, 0, 0]).unwrap(),
        );
        state.search_into(&req, &mut scratch, &mut receipt);
    }
    println!(
        "same searches after tuning: {} comparisons",
        receipt.comparisons
    );
}
